"""Discrete-event simulation substrate.

The paper evaluates its scheduler inside Umbra, a C++ engine running one
OS thread per core.  Pure Python cannot execute compute-bound work on
multiple cores (the GIL serializes it), so this package provides the
faithful alternative: a discrete-event simulator in which every worker is
an actor advancing *virtual time*.  Each scheduling decision of the paper
is made by the real scheduler code in :mod:`repro.core`; only the elapsed
time of a morsel comes from a calibrated cost model instead of a CPU.

Key pieces:

* :class:`~repro.simcore.clock.SimClock` — the virtual clock.
* :class:`~repro.simcore.events.EventQueue` — a deterministic event heap.
* :class:`~repro.simcore.rng.RngFactory` — named deterministic RNG streams.
* :class:`~repro.runtime.trace.TraceRecorder` — morsel/task/query spans.
* :class:`~repro.simcore.simulator.Simulator` — drives workers, arrivals
  and the scheduler until the workload is done.
"""

from repro.simcore.clock import SimClock
from repro.simcore.events import Event, EventQueue
from repro.simcore.rng import RngFactory
from repro.simcore.simulator import SimulationResult, Simulator
from repro.runtime.trace import MorselSpan, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "MorselSpan",
    "RngFactory",
    "SimClock",
    "SimulationResult",
    "Simulator",
    "TraceRecorder",
]
