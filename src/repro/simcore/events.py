"""Deterministic event queue for the discrete-event simulation.

Events are ordered by ``(time, sequence)``.  The monotonically increasing
sequence number breaks ties deterministically in insertion order, which
keeps whole simulations bit-for-bit reproducible for a given seed.

The queue keeps a live-event counter so ``len()`` is O(1) despite lazy
cancellation, and compacts the heap whenever cancelled entries outnumber
live ones — long-running simulations that cancel many timers therefore
stay bounded by the number of *live* events, not by churn.

The :class:`Simulator` hot loop does not go through this class: it keeps
a raw heap of ``(time, seq, kind, worker_id, payload)`` tuples (see
:mod:`repro.simcore.simulator`), which avoids one object allocation and
one Python-level ``__lt__`` per comparison.  :class:`EventQueue` remains
the general-purpose queue for cancellable timers and for tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled occurrence in virtual time.

    ``action`` is invoked with the event's time when it fires.  Events can
    be cancelled; cancelled events stay in the heap but are skipped when
    popped (lazy deletion), which is cheaper than heap surgery.
    """

    __slots__ = ("time", "seq", "action", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[float], None],
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.payload = payload
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}{flag})"


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        #: Events pushed and not yet popped or cancelled.
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        action: Callable[[float], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to run at ``time``; return a cancellable handle."""
        event = _QueuedEvent(
            float(time), self._seq, action, payload, queue=self
        )
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    # ------------------------------------------------------------------
    # Lazy-cancellation hygiene
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by events when they are cancelled."""
        self._live -= 1
        # Compact once cancelled entries exceed half the heap, so a
        # cancel-heavy workload cannot leak memory through dead entries.
        if len(self._heap) >= 8 and self._live * 2 < len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from the live events only."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)


class _QueuedEvent(Event):
    """An :class:`Event` that notifies its owning queue on cancellation."""

    __slots__ = ("_queue",)

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[float], None],
        payload: Any,
        queue: EventQueue,
    ) -> None:
        super().__init__(time, seq, action, payload)
        self._queue = queue

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._queue._note_cancelled()
