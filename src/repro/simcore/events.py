"""Deterministic event queue for the discrete-event simulation.

Events are ordered by ``(time, sequence)``.  The monotonically increasing
sequence number breaks ties deterministically in insertion order, which
keeps whole simulations bit-for-bit reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled occurrence in virtual time.

    ``action`` is invoked with the event's time when it fires.  Events can
    be cancelled; cancelled events stay in the heap but are skipped when
    popped (lazy deletion), which is cheaper than heap surgery.
    """

    time: float
    seq: int
    action: Callable[[float], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(
        self,
        time: float,
        action: Callable[[float], None],
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to run at ``time``; return a cancellable handle."""
        event = Event(time=float(time), seq=self._seq, action=action, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
