"""The virtual clock used by the discrete-event simulation.

All times in the simulation are floating-point **seconds** of virtual
time.  The clock only ever moves forward; attempting to move it backwards
indicates a broken event ordering and raises immediately rather than
silently corrupting latency measurements.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing virtual clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`SimulationError` if ``when`` lies in the past,
        which would mean the event queue delivered events out of order.
        """
        if when < self._now:
            raise SimulationError(
                f"clock moving backwards: {when:.9f} < {self._now:.9f}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"
