"""Deprecated re-export of the trace recorder.

The trace machinery moved to :mod:`repro.runtime.trace` when the runtime
layer was extracted (it is execution-backend-agnostic, not simulation
specific).  This module keeps the historical import path working but now
warns: import from :mod:`repro.runtime.trace` instead.
"""

import warnings

from repro.runtime.trace import MorselSpan, TraceRecorder, merge_adjacent_spans

warnings.warn(
    "repro.simcore.trace is deprecated; import MorselSpan, TraceRecorder "
    "and merge_adjacent_spans from repro.runtime.trace instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["MorselSpan", "TraceRecorder", "merge_adjacent_spans"]
