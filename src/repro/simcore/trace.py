"""Backwards-compatible re-export of the trace recorder.

The trace machinery moved to :mod:`repro.runtime.trace` when the runtime
layer was extracted (it is execution-backend-agnostic, not simulation
specific).  This module keeps the historical import path working.
"""

from repro.runtime.trace import MorselSpan, TraceRecorder, merge_adjacent_spans

__all__ = ["MorselSpan", "TraceRecorder", "merge_adjacent_spans"]
