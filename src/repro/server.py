"""An online analytics shard: engine + scheduler behind a lifecycle.

:class:`AnalyticsServer` is the "downstream user" API — and, since
PR 7, the *shard* unit of :class:`~repro.cluster.ClusterRouter`: it
owns a TPC-H database and one of the paper's schedulers, and runs
submitted queries on a pluggable execution backend from
:mod:`repro.runtime`:

* ``backend="simulated"`` (default) executes in *virtual time* on the
  discrete-event simulator — deterministic, fast, bit-identical to the
  figure experiments;
* ``backend="threaded"`` executes on real OS worker threads: queries
  can be submitted while earlier ones are running, and the scheduler's
  atomics and finalization protocol run under genuine concurrency;
* ``backend="process"`` executes each ``drain()`` epoch in a warm
  worker process of the shared sweep pool — CPU-bound engine work runs
  without holding this process's GIL, and the worker regenerates (and
  memoizes) the TPC-H database from its ``(scale_factor, seed)``
  profile instead of receiving it over the pipe.

Two execution *environments* select what a query physically does:

* ``environment="engine"`` (default) runs real columnar plans against
  the generated TPC-H database — results are real, latencies are
  measured wall time;
* ``environment="model"`` (simulated backend only) runs the paper's
  cost-model pipelines (:func:`repro.workloads.profiles.tpch_query`) in
  pure virtual time — no database, no results, but **bit-identical**
  latencies across runs and hash seeds, which is what the cluster's
  determinism guarantees and the routing benchmarks are built on.
  :meth:`submit_spec` additionally accepts arbitrary pre-built
  :class:`~repro.core.specs.QuerySpec`s (e.g. a phased multi-tenant
  workload) in this mode.

Lifecycle: ``start()`` → ``submit()``/``drain()`` (any number of times)
→ ``shutdown()``.  ``run()`` is the historical batch entry point and
is equivalent to ``drain()``.  After ``shutdown()`` every mutating call
raises :class:`~repro.errors.ReproError`; completed results stay
readable.

Admission control is a pluggable policy
(:mod:`repro.runtime.admission`): ``max_pending`` bounds the number of
submitted but not yet completed queries, and ``admission`` selects what
happens at the bound — ``"reject"`` (default) raises
:class:`~repro.errors.AdmissionError`, ``"block"`` (threaded backend
only, enforced at construction) waits for capacity, and ``"shed"``
fails the lowest-priority *sheddable* pending query to admit the
newcomer.  Per-tenant quotas (``tenant_quotas=...``) bound each
tenant's pending queries separately and raise the distinguishable
:class:`~repro.errors.TenantQuotaError`; SLA classes
(:class:`~repro.runtime.admission.SlaClass`) give latency-critical
queries a scheduling-priority and §3.2 weight boost and exempt them
from shedding.  An :class:`~repro.runtime.admission.AdmissionPolicy`
instance can be passed directly for custom behaviour.

Fault tolerance: queries can carry deadlines and retry policies
(``submit(name, deadline=..., retries=..., backoff=...)``), failures
are isolated per query (a raising operator fails only its own query),
and deterministic fault plans (:mod:`repro.runtime.faults`) can be
installed for chaos testing.  See ``docs/architecture.md`` for the
failure-mode taxonomy.

Example::

    from repro.server import AnalyticsServer

    server = AnalyticsServer(scale_factor=0.01, scheduler="tuning")
    short = server.submit("Q6")
    long_ = server.submit("Q18")
    server.run()
    print(server.result(short))          # real query result
    print(server.latency(short) * 1e3, "ms")

Streaming: :meth:`submit` returns a
:class:`~repro.runtime.handle.QueryHandle` — an ``int`` ticket that
doubles as a result cursor.  On the threaded backend row batches can be
consumed while the query runs (``handle.fetch(n)`` or iteration), with
the producer throttled by the bounded result channel; on the
virtual-time backends the same calls replay the stream after
``drain()``.  ``server.cancel(ticket)`` aborts an in-flight query: its
stream fails with :class:`~repro.errors.QueryCancelledError` and the
scheduler winds the query down through the normal finalization
protocol, freeing its admission slot.

::

    server = AnalyticsServer(scale_factor=0.01, backend="threaded")
    server.start()
    handle = server.submit("QS")         # large streaming scan
    for batch in handle:                 # batches arrive incrementally
        consume(batch)
    server.shutdown()
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core import SchedulerConfig, make_scheduler
from repro.core.registry import available_schedulers
from repro.core.specs import QuerySpec
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import ENGINE_QUERIES
from repro.errors import ReproError
from repro.metrics.latency import LatencyRecord
from repro.runtime.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    DEFAULT_SLA_CLASSES,
    SlaClass,
    make_admission_policy,
)
from repro.runtime.backend import BackendState, ExecutionBackend
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.handle import QueryHandle
from repro.runtime.process import ProcessBackend, engine_environment_factory
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threaded import ThreadedBackend
from repro.runtime.tickets import TicketRegistry
from repro.workloads.profiles import TPCH_QUERY_NAMES, tpch_query

#: Names accepted for the ``backend`` constructor argument.
BACKENDS = ("simulated", "threaded", "process")

#: Names accepted for the ``environment`` constructor argument.
ENVIRONMENTS = ("engine", "model")


def _environment_from_database(db: TpchDatabase) -> EngineEnvironment:
    """Picklable environment factory for hand-built databases.

    Used by the process backend when the database cannot be regenerated
    from ``(scale_factor, seed)``: the tables themselves are pickled
    into the worker once per drain.
    """
    return EngineEnvironment(db)


class AnalyticsServer:
    """Schedule real queries against a generated TPC-H database."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        scheduler: str = "tuning",
        n_workers: int = 4,
        t_max: float = 0.002,
        seed: int = 0,
        database: Optional[TpchDatabase] = None,
        backend: str = "simulated",
        max_pending: Optional[int] = None,
        admission: Union[str, AdmissionPolicy] = "reject",
        retry_budget: int = 16,
        *,
        environment: str = "engine",
        tenant_quotas: Optional[dict] = None,
        default_tenant_quota: Optional[int] = None,
        sla_classes: Optional[dict] = None,
        sharing: bool = False,
        sharing_cache_entries: int = 64,
        sharing_attach_buffer: int = 16,
    ) -> None:
        if scheduler not in available_schedulers():
            raise ReproError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{available_schedulers()}"
            )
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
            )
        if environment not in ENVIRONMENTS:
            raise ReproError(
                f"unknown environment {environment!r}; choose from "
                f"{list(ENVIRONMENTS)}"
            )
        if environment == "model" and backend != "simulated":
            raise ReproError(
                "environment='model' needs the simulated backend: the "
                "cost-model pipelines only exist in virtual time — use "
                "environment='engine' for threaded/process execution"
            )
        self._sla_classes = dict(sla_classes or DEFAULT_SLA_CLASSES)
        if isinstance(admission, AdmissionPolicy):
            policy = admission
            if policy.max_pending is None and max_pending is not None:
                if max_pending < 1:
                    raise ReproError("max_pending must be at least 1")
                policy.max_pending = max_pending
        else:
            policy = make_admission_policy(
                admission,
                max_pending=max_pending,
                tenant_quotas=tenant_quotas,
                default_tenant_quota=default_tenant_quota,
                sla_classes=self._sla_classes,
            )
        if policy.requires_realtime and backend != "threaded":
            # Satellite fix (PR 7): reject eagerly at construction —
            # string *and* policy-instance form — instead of
            # deadlocking at submit time on virtual-time backends.
            raise ReproError(
                f"admission={policy.name!r} needs the threaded backend: "
                "in virtual time nothing completes between submissions, "
                "so blocking would deadlock — use admission='reject' or "
                "drain() first"
            )
        if retry_budget < 0:
            raise ReproError("retry_budget must be >= 0")
        if sharing and backend == "process":
            raise ReproError(
                "sharing=True needs an in-process backend: the process "
                "backend's worker rebuilds its state per drain, so "
                "folds and the fragment cache cannot span submissions — "
                "use backend='simulated' or backend='threaded'"
            )
        self._sharing = bool(sharing)
        self._sharing_cache_entries = sharing_cache_entries
        self._sharing_attach_buffer = sharing_attach_buffer
        self._environment = environment
        self._scale_factor = scale_factor
        if environment == "engine":
            self.database = database or generate_tpch(scale_factor, seed=seed)
        else:
            # Model mode needs no data: specs are cost profiles.
            self.database = database
        self._scheduler_name = scheduler
        self._config = SchedulerConfig(
            n_workers=n_workers,
            t_max=t_max,
            # Interactive sessions are short; scale the tuning windows.
            tracking_duration=0.5,
            refresh_duration=2.0,
        )
        self._seed = seed
        self._admission_policy = policy
        self._backend_name = backend
        self._backend = self._make_backend()
        #: Server-wide cap on retry resubmissions (across all tickets);
        #: prevents a persistently failing workload from retrying forever.
        #: Tunable at runtime (``runtime.retry_budget``).
        self._retry_budget = retry_budget
        #: Default base backoff for retried submissions; used when
        #: ``submit(..., backoff=None)``.  Tunable at runtime
        #: (``runtime.retry_backoff``).
        self._retry_backoff = 0.05
        #: Retry resubmissions performed so far.
        self.retries_used = 0
        #: Ticket bookkeeping: alias chains, retry state, priorities,
        #: tenants and SLA classes (see :mod:`repro.runtime.tickets`).
        self._tickets = TicketRegistry()
        #: Deterministic backoff jitter (decorrelates retry storms
        #: without wall-clock randomness).
        self._retry_rng = np.random.default_rng(seed)

    def _make_backend(self) -> ExecutionBackend:
        if self._environment == "model":
            # Pure virtual time over the paper's cost model: the
            # simulator builds its own SimulationEnvironment, so runs
            # are bit-identical across repeats and hash seeds.
            return SimulatedBackend(
                lambda: make_scheduler(self._scheduler_name, self._config),
                seed=self._seed,
                sharing=self._sharing,
                sharing_cache_entries=self._sharing_cache_entries,
                sharing_attach_buffer=self._sharing_attach_buffer,
            )
        if self._backend_name == "threaded":
            return ThreadedBackend(
                make_scheduler(self._scheduler_name, self._config),
                EngineEnvironment(self.database),
                sharing=self._sharing,
                sharing_attach_buffer=self._sharing_attach_buffer,
            )
        if self._backend_name == "process":
            from functools import partial

            db = self.database
            if db.generated:
                # Pure function of (scale_factor, seed): regenerate in
                # the worker (memoized there) instead of pickling the
                # relation data across on every drain.
                environment_factory = partial(
                    engine_environment_factory, db.scale_factor, db.seed
                )
            else:
                environment_factory = partial(_environment_from_database, db)
            return ProcessBackend(
                partial(make_scheduler, self._scheduler_name, self._config),
                seed=self._seed,
                environment_factory=environment_factory,
            )
        return SimulatedBackend(
            lambda: make_scheduler(self._scheduler_name, self._config),
            seed=self._seed,
            environment_factory=lambda: EngineEnvironment(self.database),
            sharing=self._sharing,
            sharing_cache_entries=self._sharing_cache_entries,
            sharing_attach_buffer=self._sharing_attach_buffer,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def available_queries(self) -> Tuple[str, ...]:
        """Names of the queries this server can run by name."""
        if self._environment == "model":
            return TPCH_QUERY_NAMES
        return ENGINE_QUERIES

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend (exposed for tests and monitoring)."""
        return self._backend

    @property
    def admission_policy(self) -> AdmissionPolicy:
        """The admission policy guarding :meth:`submit`."""
        return self._admission_policy

    @property
    def sharing(self) -> bool:
        """Whether work sharing (folds + fragment cache) is enabled."""
        return self._sharing

    @property
    def sharing_stats(self):
        """Work-sharing counters (:class:`~repro.sharing.SharingStats`).

        Zero everywhere when ``sharing=False`` — the counters exist on
        every in-process backend so monitoring code need not branch.
        """
        stats = getattr(self._backend, "sharing_stats", None)
        if stats is None:
            from repro.sharing import SharingStats

            return SharingStats()
        return stats

    def invalidate_sharing_cache(self) -> None:
        """Drop every cached fragment result and advance the epoch.

        Call after mutating the database in place; a no-op when sharing
        (or the fragment cache) is off.
        """
        invalidate = getattr(
            self._backend, "invalidate_sharing_cache", None
        )
        if invalidate is not None:
            invalidate()

    @property
    def sla_classes(self) -> dict:
        """The SLA classes :meth:`submit` resolves ``sla=`` names against."""
        return dict(self._sla_classes)

    @property
    def tickets(self) -> TicketRegistry:
        """Ticket bookkeeping (aliases, priorities, tenants, SLA)."""
        return self._tickets

    @property
    def state(self) -> BackendState:
        """Lifecycle phase: NEW, RUNNING or CLOSED."""
        return self._backend.state

    @property
    def pending_count(self) -> int:
        """Queries submitted but not yet completed."""
        return self._backend.pending_count

    @property
    def completed_count(self) -> int:
        """Queries with a latency record."""
        return self._backend.completed_count

    def tenant_pending(self, tenant: str) -> int:
        """Pending queries currently charged to ``tenant``."""
        return self._admission_policy.tenant_pending(
            self._backend, self._tickets, tenant
        )

    def query_spec(self, name: str) -> QuerySpec:
        """The :class:`QuerySpec` :meth:`submit` would run for ``name``.

        Engine mode derives it from the real plan's cardinalities;
        model mode uses the TPC-H cost profile at this server's scale
        factor.  The cluster router's placement predictor uses this to
        estimate per-query work without submitting anything.
        """
        if name not in self.available_queries:
            raise ReproError(
                f"no {self._environment} plan for {name!r}; available: "
                f"{self.available_queries}"
            )
        if self._environment == "model":
            return tpch_query(name, self._scale_factor)
        return engine_query_spec(name, self.database)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing (threaded: spawn the worker threads).

        Idempotent while running; raises after :meth:`shutdown`.
        Calling :meth:`drain`/:meth:`run` starts the server implicitly.
        """
        self._backend.start()

    def drain(self) -> List[LatencyRecord]:
        """Run every submitted query to completion; return new records.

        The server stays usable afterwards — submit more and drain
        again.  Raises after :meth:`shutdown`.

        With per-query ``retries``, drain loops until no transient
        failure is eligible for resubmission; the returned list contains
        the records of **every** attempt (failed ones included), so the
        full failure history is observable.  Use :meth:`record` on a
        ticket for its latest attempt only.
        """
        records = list(self._backend.drain())
        while self._maybe_retry():
            records.extend(self._backend.drain())
        return records

    def run(self) -> List[LatencyRecord]:
        """Historical batch entry point; equivalent to :meth:`drain`."""
        return self.drain()

    def shutdown(self) -> None:
        """Stop executing and release workers (idempotent).

        Afterwards :meth:`submit`, :meth:`drain` and :meth:`run` raise
        :class:`~repro.errors.ReproError`; completed results, records
        and latencies remain readable.
        """
        self._backend.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        retries: int = 0,
        backoff: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[Union[str, SlaClass]] = None,
    ) -> QueryHandle:
        """Submit one query by name; returns its :class:`QueryHandle`.

        The handle is an ``int`` (usable everywhere a ticket is) that
        additionally exposes the streaming cursor API: ``fetch(n)``,
        iteration, ``cancel()`` and ``progress()``.

        On the virtual-time backends ``at`` is the virtual arrival time
        relative to the next :meth:`drain` (default 0.0).  On the
        threaded backend queries arrive at the wall-clock moment of the
        call and may be submitted while the server is executing; ``at``
        must be omitted.

        ``deadline`` bounds the query's end-to-end latency in the
        backend's time base (seconds after arrival); a query that misses
        it fails with :class:`~repro.errors.QueryTimeoutError` through
        the scheduler's abort protocol.  Deadline misses are permanent —
        they are never retried.

        ``retries`` allows up to that many automatic resubmissions after
        *transient* failures (worker deaths, injected faults), with
        exponential ``backoff`` plus deterministic jitter between
        attempts, capped by the server-wide ``retry_budget``.  Permanent
        failures (plan errors, timeouts, cancellations, shedding) are
        never retried.  Retried tickets stay valid: :meth:`poll`,
        :meth:`wait`, :meth:`result`, :meth:`record` and :meth:`latency`
        transparently follow the ticket to its latest attempt.

        ``tenant`` charges the query to a tenant's admission quota;
        ``sla`` selects a service class by name (``"latency"``,
        ``"bulk"``, or a custom :class:`SlaClass`): the class's base
        priority adds to ``priority`` for shedding decisions, its §3.2
        weight scales the query's scheduler priority, and a
        non-sheddable class is exempt from overload eviction.

        Backpressure: with ``max_pending`` set, a full server raises
        :class:`~repro.errors.AdmissionError` (``admission="reject"``),
        waits for a slot (``admission="block"``, threaded only), or
        sheds the lowest-priority pending query to make room
        (``admission="shed"`` — the newcomer is rejected instead when
        nothing pending has a strictly lower ``priority``).  A tenant
        over its own quota raises
        :class:`~repro.errors.TenantQuotaError` regardless of policy.
        """
        return self.submit_spec(
            self.query_spec(name),
            at=at,
            deadline=deadline,
            retries=retries,
            backoff=backoff,
            priority=priority,
            tenant=tenant,
            sla=sla,
        )

    def submit_spec(
        self,
        spec: QuerySpec,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        retries: int = 0,
        backoff: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        sla: Optional[Union[str, SlaClass]] = None,
    ) -> QueryHandle:
        """Submit a pre-built :class:`QuerySpec` (model environment).

        This is how workload-layer streams (phased multi-tenant
        workloads, scenario generators) run against a server or a
        cluster shard: the specs carry their own pipelines, tags and
        user priorities.  Engine mode refuses specs it has no plan for,
        so by-name submission stays the engine-mode API.
        """
        if self._environment == "engine" and spec.name not in ENGINE_QUERIES:
            raise ReproError(
                f"no engine plan for {spec.name!r}; available: "
                f"{ENGINE_QUERIES} (use environment='model' for "
                f"cost-model specs)"
            )
        if at is not None and at < 0.0:
            raise ReproError("arrival time must be non-negative")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if backoff is None:
            backoff = self._retry_backoff
        if backoff < 0.0:
            raise ReproError("backoff must be >= 0")
        sla_class = self._resolve_sla(sla)
        request = AdmissionRequest(
            priority=priority, tenant=tenant, sla=sla_class
        )
        self._admission_policy.admit(self._backend, self._tickets, request)
        spec = self._decorate_spec(spec, deadline, tenant, sla_class)
        handle = self._backend.submit(spec, at=at)
        ticket = int(handle)
        self._tickets.register(
            ticket,
            priority=request.effective_priority,
            tenant=tenant,
            sla=sla_class.name if sla_class is not None else None,
        )
        if retries > 0:
            self._tickets.arm_retry(
                ticket, spec=spec, at=at, retries=retries, backoff=backoff
            )
        return handle

    def _resolve_sla(
        self, sla: Optional[Union[str, SlaClass]]
    ) -> Optional[SlaClass]:
        if sla is None or isinstance(sla, SlaClass):
            return sla
        sla_class = self._sla_classes.get(sla)
        if sla_class is None:
            raise ReproError(
                f"unknown SLA class {sla!r}; choose from "
                f"{sorted(self._sla_classes)}"
            )
        return sla_class

    @staticmethod
    def _decorate_spec(
        spec: QuerySpec,
        deadline: Optional[float],
        tenant: Optional[str],
        sla: Optional[SlaClass],
    ) -> QuerySpec:
        """Apply deadline, tenant tag and SLA weight/tag to a spec."""
        changes = {}
        if deadline is not None:
            changes["deadline"] = deadline
        tags = tuple(spec.tags)
        if tenant is not None and f"tenant:{tenant}" not in tags:
            tags = tags + (f"tenant:{tenant}",)
        if sla is not None:
            if f"sla:{sla.name}" not in tags:
                tags = tags + (f"sla:{sla.name}",)
            if spec.user_priority is None and sla.weight != 1.0:
                changes["user_priority"] = sla.weight
        if tags != tuple(spec.tags):
            changes["tags"] = tags
        return replace(spec, **changes) if changes else spec

    # ------------------------------------------------------------------
    # Retries
    # ------------------------------------------------------------------
    def _resolve(self, ticket: int) -> int:
        """Follow a ticket through its retry replacements."""
        return self._tickets.resolve(ticket)

    def _maybe_retry(self) -> bool:
        """Resubmit retry-eligible failed tickets; True if any were."""
        resubmitted = False
        for original in self._tickets.retryable_tickets():
            if self._retry_one(original, sleep=False) is not None:
                resubmitted = True
        return resubmitted

    def _retry_one(self, original: int, sleep: bool) -> Optional[int]:
        """Retry one original ticket if its latest attempt failed.

        Returns the replacement backend ticket, or ``None`` when no
        retry applies (not failed yet, permanent failure, attempts or
        budget exhausted).
        """
        state = self._tickets.retry_state(original)
        if state is None:
            return None
        current = self._resolve(original)
        backend = self._backend
        if current not in backend.records or not backend.failed(current):
            return None
        if state["left"] <= 0 or self.retries_used >= self._retry_budget:
            return None
        error = backend.failure(current)
        if error is None or not getattr(error, "transient", False):
            return None  # permanent: plan errors, timeouts, shedding
        delay = state["backoff"] * (2.0 ** state["attempt"])
        delay *= 1.0 + 0.25 * float(self._retry_rng.random())
        state["left"] -= 1
        state["attempt"] += 1
        self.retries_used += 1
        if sleep and delay > 0.0:
            # Real time only: on virtual-time backends the backoff is a
            # scheduling fiction (nothing else runs between epochs).
            time.sleep(delay)
        spec = state["spec"]
        if self._sharing and "noshare" not in spec.tags:
            # A failed shared execution must not refold: the retry runs
            # unshared so one poisoned fold cannot fail its members'
            # retries too.
            spec = replace(spec, tags=tuple(spec.tags) + ("noshare",))
        handle = backend.submit(spec, at=state["at"])
        replacement = int(handle)
        self._tickets.alias(current, replacement)
        return replacement

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def poll(self, ticket: int) -> Optional[LatencyRecord]:
        """The latency record if the query completed, else ``None``.

        Follows retried tickets to their latest attempt.
        """
        return self._backend.poll(self._resolve(ticket))

    def wait(self, ticket: int, timeout: Optional[float] = None) -> LatencyRecord:
        """Block until one query completes (threaded backend).

        The simulated and process backends complete queries in epochs —
        only inside :meth:`drain` — so an unfinished ticket raises
        instead of blocking forever.  Tickets submitted with ``retries``
        are retried here too: a transient failure resubmits (after the
        backoff) and the wait continues on the replacement attempt.
        """
        ticket = int(ticket)
        if isinstance(self._backend, ThreadedBackend):
            while True:
                record = self._backend.wait(
                    self._resolve(ticket), timeout=timeout
                )
                if (
                    record.failed
                    and self._retry_one(ticket, sleep=True) is not None
                ):
                    continue
                return record
        record = self._backend.poll(self._resolve(ticket))
        if record is None:
            raise ReproError(
                f"ticket {ticket} has not finished; the "
                f"{self._backend_name} backend completes queries in "
                f"drain()/run()"
            )
        return record

    def cancel(self, ticket: int) -> bool:
        """Abort one in-flight query; ``True`` if it was cancelled.

        The ticket's stream fails with
        :class:`~repro.errors.QueryCancelledError`, the scheduler winds
        the query down through the normal finalization protocol, and its
        admission slot frees for subsequent queries.  A query that
        already completed keeps its result (returns ``False``).
        Cancelling a retried ticket cancels its latest attempt and stops
        further retries.
        """
        ticket = int(ticket)
        self._tickets.disarm_retry(ticket)
        return self._backend.cancel(self._resolve(ticket))

    def handle(self, ticket: int) -> QueryHandle:
        """The :class:`QueryHandle` of the ticket's latest attempt."""
        return self._backend.handle(self._resolve(ticket))

    def failed(self, ticket: int) -> bool:
        """Whether the ticket's latest attempt failed."""
        return self._backend.failed(self._resolve(ticket))

    def failure(self, ticket: int) -> Optional[BaseException]:
        """The exception that failed the ticket's latest attempt."""
        return self._backend.failure(self._resolve(ticket))

    def result(self, ticket: int):
        """The fully assembled query result for a completed ticket.

        Raises :class:`~repro.errors.QueryCancelledError` for cancelled
        queries, :class:`~repro.errors.QueryFailedError` for failed ones
        (chaining the cause), and :class:`~repro.errors.ReproError` for
        unfinished tickets or tickets consumed as live streams.  Follows
        retried tickets to their latest attempt.
        """
        backend = self._backend
        ticket = self._resolve(ticket)
        if (
            0 <= ticket < backend.submitted_count
            and ticket not in backend.records
            and not backend.cancelled(ticket)
            and ticket not in backend.failures
        ):
            raise ReproError(
                f"ticket {ticket} has no result (did you run()?)"
            )
        return backend.result(ticket)

    def latency(self, ticket: int) -> float:
        """End-to-end latency of a finished query in seconds."""
        record = self._backend.records.get(self._resolve(ticket))
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record.latency

    def record(self, ticket: int) -> LatencyRecord:
        """The full latency record of a finished query (latest attempt)."""
        record = self._backend.records.get(self._resolve(ticket))
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(
        self, plan: FaultPlan, *, spent=(), skip_kinds=()
    ) -> FaultInjector:
        """Install a deterministic fault plan on the backend (chaos tests).

        See :mod:`repro.runtime.faults`; install before queries run.
        """
        return self._backend.install_faults(
            plan, spent=spent, skip_kinds=skip_kinds
        )

    # ------------------------------------------------------------------
    # Self-tuning over the knob space
    # ------------------------------------------------------------------
    def _update_config(self, **changes) -> None:
        """Update the scheduler configuration and rebroadcast it.

        The config object is frozen, so tuned core knobs produce a new
        one; the backends pick it up each by their own mechanism — the
        simulated backend's factory closes over ``self`` and reads the
        config at the next drain, the threaded backend receives live
        parameters through :meth:`ExecutionBackend.broadcast_knobs`,
        and the process backend gets a freshly bound factory for its
        next epoch.
        """
        self._config = replace(self._config, **changes)
        swap = getattr(self._backend, "set_scheduler_factory", None)
        if swap is not None:
            from functools import partial

            swap(
                partial(make_scheduler, self._scheduler_name, self._config)
            )

    def knob_space(self):
        """The live tunable surface of this server, across all layers.

        Every knob is bound to its real target, so
        :meth:`~repro.tuning.knobs.KnobSpace.apply` — and therefore
        :meth:`tune` — broadcasts mid-run: core knobs flow through the
        scheduler config and the backend's §4 parameter broadcast,
        runtime knobs mutate the backend and the retry machinery,
        and the admission queue depth mutates the policy in place (only
        registered when the policy actually bounds pending queries).
        Cluster-level knobs are registered by
        :meth:`repro.cluster.ClusterRouter.knob_space`, not here.
        """
        from repro.tuning.knobs import KnobSpace, stock_knob

        space = KnobSpace()
        config = self._config

        def apply_decay(value) -> None:
            params = self._config.effective_decay()
            self._update_config(
                decay=params.with_values(float(value), params.d_start)
            )
            self._backend.broadcast_knobs({"core.decay": float(value)})

        def apply_dstart(value) -> None:
            params = self._config.effective_decay()
            self._update_config(
                decay=params.with_values(params.decay, int(value))
            )
            self._backend.broadcast_knobs({"core.d_start": int(value)})

        space.register(
            stock_knob(
                "core.decay",
                read=lambda: self._config.effective_decay().decay,
                apply=apply_decay,
            )
        )
        space.register(
            stock_knob(
                "core.d_start",
                read=lambda: self._config.effective_decay().d_start,
                apply=apply_dstart,
            )
        )
        space.register(
            stock_knob(
                "core.t_max",
                read=lambda: self._config.t_max,
                apply=lambda value: self._update_config(t_max=float(value)),
            )
        )
        space.register(
            stock_knob(
                "core.slot_limit",
                read=lambda: self._config.slot_capacity,
                apply=lambda value: self._update_config(
                    slot_capacity=int(value)
                ),
                default=config.slot_capacity,
            )
        )
        space.register(
            stock_knob(
                "runtime.channel_capacity",
                read=lambda: self._backend.channel_capacity,
                apply=lambda value: self._backend.broadcast_knobs(
                    {"runtime.channel_capacity": int(value)}
                ),
            )
        )

        def apply_retry_budget(value) -> None:
            self._retry_budget = int(value)

        def apply_retry_backoff(value) -> None:
            self._retry_backoff = float(value)

        space.register(
            stock_knob(
                "runtime.retry_budget",
                read=lambda: self._retry_budget,
                apply=apply_retry_budget,
            )
        )
        space.register(
            stock_knob(
                "runtime.retry_backoff",
                read=lambda: self._retry_backoff,
                apply=apply_retry_backoff,
            )
        )
        policy = self._admission_policy
        if policy.max_pending is not None:

            def apply_max_pending(value) -> None:
                policy.max_pending = int(value)

            space.register(
                stock_knob(
                    "admission.max_pending",
                    read=lambda: policy.max_pending,
                    apply=apply_max_pending,
                    default=policy.max_pending,
                )
            )
        return space

    def tracked_workload(self):
        """Completed queries as a §4 tracked workload (single-worker form).

        Work is each record's CPU time divided by the worker count — the
        same one-worker reduction the paper's tracker performs — and
        arrivals are offsets from the earliest completed arrival.  Input
        for :meth:`tune`; shed and cancelled attempts are excluded.
        """
        from repro.tuning.tracker import TrackedQuery

        records = [
            r
            for r in self._backend.records.values()
            if not r.failed and not r.cancelled and r.cpu_seconds > 0.0
        ]
        if not records:
            return []
        t0 = min(r.arrival_time for r in records)
        workers = max(1, self._config.n_workers)
        return [
            TrackedQuery(
                group_id=r.query_id,
                name=r.name,
                scale_factor=r.scale_factor,
                arrival_offset=r.arrival_time - t0,
                work=r.cpu_seconds / workers,
            )
            for r in sorted(
                records, key=lambda r: (r.arrival_time, r.query_id)
            )
        ]

    def tune(
        self,
        budget_seconds: Optional[float] = 0.05,
        *,
        history=None,
        compress_to: Optional[int] = None,
    ):
        """One cost-bounded tuning cycle over this server's knob space.

        Searches :meth:`knob_space` on the workload observed so far
        (:meth:`tracked_workload`) under ``budget_seconds`` of simulated
        tuning time, applies the winning vector — which broadcasts it
        through the backend mid-run — and returns the
        :class:`~repro.tuning.optimizer.KnobSearchResult`.  Pass a
        :class:`~repro.tuning.history.TuningHistory` to carry the
        candidate-ranking surrogate across cycles and server restarts.
        """
        from repro.tuning.optimizer import search_knob_space

        space = self.knob_space()
        kwargs = {} if compress_to is None else {"compress_to": compress_to}
        result = search_knob_space(
            space,
            self.tracked_workload(),
            budget_seconds=budget_seconds,
            history=history,
            **kwargs,
        )
        space.apply(result.values)
        return result
