"""An online analytics service: engine + scheduler behind a lifecycle.

:class:`AnalyticsServer` is the "downstream user" API: it owns a
generated TPC-H database and one of the paper's schedulers, and runs
submitted queries on a pluggable execution backend from
:mod:`repro.runtime`:

* ``backend="simulated"`` (default) executes in *virtual time* on the
  discrete-event simulator — deterministic, fast, bit-identical to the
  figure experiments;
* ``backend="threaded"`` executes on real OS worker threads: queries
  can be submitted while earlier ones are running, and the scheduler's
  atomics and finalization protocol run under genuine concurrency;
* ``backend="process"`` executes each ``drain()`` epoch in a warm
  worker process of the shared sweep pool — CPU-bound engine work runs
  without holding this process's GIL, and the worker regenerates (and
  memoizes) the TPC-H database from its ``(scale_factor, seed)``
  profile instead of receiving it over the pipe.

Lifecycle: ``start()`` → ``submit()``/``drain()`` (any number of times)
→ ``shutdown()``.  ``run()`` is the historical batch entry point and
is equivalent to ``drain()``.  After ``shutdown()`` every mutating call
raises :class:`~repro.errors.ReproError`; completed results stay
readable.

Admission control: ``max_pending`` bounds the number of submitted but
not yet completed queries.  When the bound is hit, ``admission="reject"``
(default) raises :class:`~repro.errors.AdmissionError` — explicit
backpressure for the caller — while ``admission="block"`` (threaded
backend only) waits for capacity.

Example::

    from repro.server import AnalyticsServer

    server = AnalyticsServer(scale_factor=0.01, scheduler="tuning")
    short = server.submit("Q6")
    long_ = server.submit("Q18")
    server.run()
    print(server.result(short))          # real query result
    print(server.latency(short) * 1e3, "ms")

Streaming: :meth:`submit` returns a
:class:`~repro.runtime.handle.QueryHandle` — an ``int`` ticket that
doubles as a result cursor.  On the threaded backend row batches can be
consumed while the query runs (``handle.fetch(n)`` or iteration), with
the producer throttled by the bounded result channel; on the
virtual-time backends the same calls replay the stream after
``drain()``.  ``server.cancel(ticket)`` aborts an in-flight query: its
stream fails with :class:`~repro.errors.QueryCancelledError` and the
scheduler winds the query down through the normal finalization
protocol, freeing its admission slot.

::

    server = AnalyticsServer(scale_factor=0.01, backend="threaded")
    server.start()
    handle = server.submit("QS")         # large streaming scan
    for batch in handle:                 # batches arrive incrementally
        consume(batch)
    server.shutdown()
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core import SchedulerConfig, make_scheduler
from repro.core.registry import available_schedulers
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import ENGINE_QUERIES
from repro.errors import AdmissionError, ReproError
from repro.metrics.latency import LatencyRecord
from repro.runtime.backend import BackendState, ExecutionBackend
from repro.runtime.handle import QueryHandle
from repro.runtime.process import ProcessBackend, engine_environment_factory
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threaded import ThreadedBackend

#: Names accepted for the ``backend`` constructor argument.
BACKENDS = ("simulated", "threaded", "process")


def _environment_from_database(db: TpchDatabase) -> EngineEnvironment:
    """Picklable environment factory for hand-built databases.

    Used by the process backend when the database cannot be regenerated
    from ``(scale_factor, seed)``: the tables themselves are pickled
    into the worker once per drain.
    """
    return EngineEnvironment(db)


class AnalyticsServer:
    """Schedule real queries against a generated TPC-H database."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        scheduler: str = "tuning",
        n_workers: int = 4,
        t_max: float = 0.002,
        seed: int = 0,
        database: Optional[TpchDatabase] = None,
        backend: str = "simulated",
        max_pending: Optional[int] = None,
        admission: str = "reject",
    ) -> None:
        if scheduler not in available_schedulers():
            raise ReproError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{available_schedulers()}"
            )
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
            )
        if admission not in ("reject", "block"):
            raise ReproError(
                f"unknown admission policy {admission!r}; choose from "
                f"['reject', 'block']"
            )
        if admission == "block" and backend != "threaded":
            raise ReproError(
                "admission='block' needs the threaded backend: in virtual "
                "time nothing completes between submissions, so blocking "
                "would deadlock — use admission='reject' or drain() first"
            )
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be at least 1")
        self.database = database or generate_tpch(scale_factor, seed=seed)
        self._scheduler_name = scheduler
        self._config = SchedulerConfig(
            n_workers=n_workers,
            t_max=t_max,
            # Interactive sessions are short; scale the tuning windows.
            tracking_duration=0.5,
            refresh_duration=2.0,
        )
        self._seed = seed
        self._max_pending = max_pending
        self._admission = admission
        self._backend_name = backend
        self._backend = self._make_backend()

    def _make_backend(self) -> ExecutionBackend:
        if self._backend_name == "threaded":
            return ThreadedBackend(
                make_scheduler(self._scheduler_name, self._config),
                EngineEnvironment(self.database),
            )
        if self._backend_name == "process":
            from functools import partial

            db = self.database
            if db.generated:
                # Pure function of (scale_factor, seed): regenerate in
                # the worker (memoized there) instead of pickling the
                # relation data across on every drain.
                environment_factory = partial(
                    engine_environment_factory, db.scale_factor, db.seed
                )
            else:
                environment_factory = partial(_environment_from_database, db)
            return ProcessBackend(
                partial(make_scheduler, self._scheduler_name, self._config),
                seed=self._seed,
                environment_factory=environment_factory,
            )
        return SimulatedBackend(
            lambda: make_scheduler(self._scheduler_name, self._config),
            seed=self._seed,
            environment_factory=lambda: EngineEnvironment(self.database),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def available_queries(self) -> Tuple[str, ...]:
        """Names of the queries with real engine plans."""
        return ENGINE_QUERIES

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend (exposed for tests and monitoring)."""
        return self._backend

    @property
    def state(self) -> BackendState:
        """Lifecycle phase: NEW, RUNNING or CLOSED."""
        return self._backend.state

    @property
    def pending_count(self) -> int:
        """Queries submitted but not yet completed."""
        return self._backend.pending_count

    @property
    def completed_count(self) -> int:
        """Queries with a latency record."""
        return self._backend.completed_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing (threaded: spawn the worker threads).

        Idempotent while running; raises after :meth:`shutdown`.
        Calling :meth:`drain`/:meth:`run` starts the server implicitly.
        """
        self._backend.start()

    def drain(self) -> List[LatencyRecord]:
        """Run every submitted query to completion; return new records.

        The server stays usable afterwards — submit more and drain
        again.  Raises after :meth:`shutdown`.
        """
        return self._backend.drain()

    def run(self) -> List[LatencyRecord]:
        """Historical batch entry point; equivalent to :meth:`drain`."""
        return self.drain()

    def shutdown(self) -> None:
        """Stop executing and release workers (idempotent).

        Afterwards :meth:`submit`, :meth:`drain` and :meth:`run` raise
        :class:`~repro.errors.ReproError`; completed results, records
        and latencies remain readable.
        """
        self._backend.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, name: str, at: Optional[float] = None) -> QueryHandle:
        """Submit one query; returns its :class:`QueryHandle` ticket.

        The handle is an ``int`` (usable everywhere a ticket is) that
        additionally exposes the streaming cursor API: ``fetch(n)``,
        iteration, ``cancel()`` and ``progress()``.

        On the simulated backend ``at`` is the virtual arrival time
        relative to the next :meth:`drain` (default 0.0).  On the
        threaded backend queries arrive at the wall-clock moment of the
        call and may be submitted while the server is executing; ``at``
        must be omitted.

        Backpressure: with ``max_pending`` set, a full server raises
        :class:`~repro.errors.AdmissionError` (``admission="reject"``)
        or waits for a slot (``admission="block"``, threaded only).
        """
        if name not in ENGINE_QUERIES:
            raise ReproError(
                f"no engine plan for {name!r}; available: {ENGINE_QUERIES}"
            )
        if at is not None and at < 0.0:
            raise ReproError("arrival time must be non-negative")
        self._check_admission()
        return self._backend.submit(
            engine_query_spec(name, self.database), at=at
        )

    def _check_admission(self) -> None:
        limit = self._max_pending
        if limit is None:
            return
        if self._backend.pending_count < limit:
            return
        if self._admission == "reject":
            raise AdmissionError(
                f"server full: {self._backend.pending_count} queries "
                f"pending (max_pending={limit}); retry later or drain()"
            )
        # admission == "block": wait for completions to free capacity.
        # Worker failures surface through drain()/wait(); here a closed
        # backend is the only reason to give up.
        while self._backend.pending_count >= limit:
            if self._backend.state is BackendState.CLOSED:
                raise ReproError("server shut down while blocked on admission")
            time.sleep(0.001)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def poll(self, ticket: int) -> Optional[LatencyRecord]:
        """The latency record if the query completed, else ``None``."""
        return self._backend.poll(ticket)

    def wait(self, ticket: int, timeout: Optional[float] = None) -> LatencyRecord:
        """Block until one query completes (threaded backend).

        The simulated and process backends complete queries in epochs —
        only inside :meth:`drain` — so an unfinished ticket raises
        instead of blocking forever.
        """
        if isinstance(self._backend, ThreadedBackend):
            return self._backend.wait(ticket, timeout=timeout)
        record = self._backend.poll(ticket)
        if record is None:
            raise ReproError(
                f"ticket {ticket} has not finished; the "
                f"{self._backend_name} backend completes queries in "
                f"drain()/run()"
            )
        return record

    def cancel(self, ticket: int) -> bool:
        """Abort one in-flight query; ``True`` if it was cancelled.

        The ticket's stream fails with
        :class:`~repro.errors.QueryCancelledError`, the scheduler winds
        the query down through the normal finalization protocol, and its
        admission slot frees for subsequent queries.  A query that
        already completed keeps its result (returns ``False``).
        """
        return self._backend.cancel(ticket)

    def result(self, ticket: int):
        """The fully assembled query result for a completed ticket.

        Raises :class:`~repro.errors.QueryCancelledError` for cancelled
        queries and :class:`~repro.errors.ReproError` for unfinished
        tickets or tickets consumed as live streams.
        """
        backend = self._backend
        if (
            0 <= ticket < backend.submitted_count
            and ticket not in backend.records
            and not backend.cancelled(ticket)
        ):
            raise ReproError(
                f"ticket {ticket} has no result (did you run()?)"
            )
        return backend.result(ticket)

    def latency(self, ticket: int) -> float:
        """End-to-end latency of a finished query in seconds."""
        record = self._backend.records.get(ticket)
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record.latency

    def record(self, ticket: int) -> LatencyRecord:
        """The full latency record of a finished query."""
        record = self._backend.records.get(ticket)
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record
