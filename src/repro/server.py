"""A small interactive facade: engine + scheduler in one object.

:class:`AnalyticsServer` is the "downstream user" API: it owns a
generated TPC-H database, an execution environment, and one of the
paper's schedulers, and exposes submit/run/results.  Submitted queries
execute *real* engine morsels under the chosen scheduling policy (the
workers interleave on one OS thread; see :mod:`repro.engine.execution`).

Example::

    from repro.server import AnalyticsServer

    server = AnalyticsServer(scale_factor=0.01, scheduler="tuning")
    short = server.submit("Q6")
    long_ = server.submit("Q18")
    server.run()
    print(server.result(short))          # real query result
    print(server.latency(short) * 1e3, "ms")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import SchedulerConfig, make_scheduler
from repro.core.specs import QuerySpec
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import ENGINE_QUERIES
from repro.errors import ReproError
from repro.metrics.latency import LatencyRecord
from repro.simcore import Simulator


class AnalyticsServer:
    """Schedule real queries against a generated TPC-H database."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        scheduler: str = "tuning",
        n_workers: int = 4,
        t_max: float = 0.002,
        seed: int = 0,
        database: Optional[TpchDatabase] = None,
    ) -> None:
        self.database = database or generate_tpch(scale_factor, seed=seed)
        self._scheduler_name = scheduler
        self._config = SchedulerConfig(
            n_workers=n_workers,
            t_max=t_max,
            # Interactive sessions are short; scale the tuning windows.
            tracking_duration=0.5,
            refresh_duration=2.0,
        )
        self._seed = seed
        self._pending: List[Tuple[float, QuerySpec]] = []
        self._submit_index = 0
        self._records: Dict[int, LatencyRecord] = {}
        self._environment: Optional[EngineEnvironment] = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def available_queries(self) -> Tuple[str, ...]:
        """Names of the queries with real engine plans."""
        return ENGINE_QUERIES

    def submit(self, name: str, at: float = 0.0) -> int:
        """Queue one query; returns a ticket for result/latency lookup.

        ``at`` is the (virtual) arrival time relative to the next
        :meth:`run`.  Tickets are the admission order, i.e. arrival
        order after sorting by ``at``.
        """
        if name not in ENGINE_QUERIES:
            raise ReproError(
                f"no engine plan for {name!r}; available: {ENGINE_QUERIES}"
            )
        if at < 0.0:
            raise ReproError("arrival time must be non-negative")
        self._pending.append((at, engine_query_spec(name, self.database)))
        self._submit_index += 1
        return self._submit_index - 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> List[LatencyRecord]:
        """Execute all pending queries to completion; return their records."""
        if not self._pending:
            return []
        # Tickets are assigned in submission order, but the scheduler
        # numbers groups in arrival order; remember the mapping.
        order = sorted(
            range(len(self._pending)), key=lambda i: self._pending[i][0]
        )
        ticket_base = self._submit_index - len(self._pending)
        arrival_to_ticket = {
            arrival_index: ticket_base + submit_index
            for arrival_index, submit_index in enumerate(order)
        }
        workload = [self._pending[i] for i in order]
        self._pending = []
        self._environment = EngineEnvironment(self.database)
        scheduler = make_scheduler(self._scheduler_name, self._config)
        result = Simulator(
            scheduler, workload, seed=self._seed, environment=self._environment
        ).run()
        finished: List[LatencyRecord] = []
        for record in result.records.records:
            ticket = arrival_to_ticket[record.query_id]
            self._records[ticket] = record
            # Map engine-side plan results onto tickets as well.
            self._environment.finish_query(record.query_id)
            self._results_by_ticket = getattr(self, "_results_by_ticket", {})
            self._results_by_ticket[ticket] = self._environment.results[
                record.query_id
            ]
            finished.append(record)
        return finished

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, ticket: int):
        """The query result for a ticket (after :meth:`run`)."""
        results = getattr(self, "_results_by_ticket", {})
        if ticket not in results:
            raise ReproError(f"ticket {ticket} has no result (did you run()?)")
        return results[ticket]

    def latency(self, ticket: int) -> float:
        """End-to-end latency of a finished query in (virtual) seconds."""
        record = self._records.get(ticket)
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record.latency

    def record(self, ticket: int) -> LatencyRecord:
        """The full latency record of a finished query."""
        record = self._records.get(ticket)
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record
