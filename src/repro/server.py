"""An online analytics service: engine + scheduler behind a lifecycle.

:class:`AnalyticsServer` is the "downstream user" API: it owns a
generated TPC-H database and one of the paper's schedulers, and runs
submitted queries on a pluggable execution backend from
:mod:`repro.runtime`:

* ``backend="simulated"`` (default) executes in *virtual time* on the
  discrete-event simulator — deterministic, fast, bit-identical to the
  figure experiments;
* ``backend="threaded"`` executes on real OS worker threads: queries
  can be submitted while earlier ones are running, and the scheduler's
  atomics and finalization protocol run under genuine concurrency;
* ``backend="process"`` executes each ``drain()`` epoch in a warm
  worker process of the shared sweep pool — CPU-bound engine work runs
  without holding this process's GIL, and the worker regenerates (and
  memoizes) the TPC-H database from its ``(scale_factor, seed)``
  profile instead of receiving it over the pipe.

Lifecycle: ``start()`` → ``submit()``/``drain()`` (any number of times)
→ ``shutdown()``.  ``run()`` is the historical batch entry point and
is equivalent to ``drain()``.  After ``shutdown()`` every mutating call
raises :class:`~repro.errors.ReproError`; completed results stay
readable.

Admission control: ``max_pending`` bounds the number of submitted but
not yet completed queries.  When the bound is hit, ``admission="reject"``
(default) raises :class:`~repro.errors.AdmissionError` — explicit
backpressure for the caller — ``admission="block"`` (threaded backend
only) waits for capacity, and ``admission="shed"`` degrades gracefully
under overload by failing the lowest-priority pending query (with a
clear :class:`~repro.errors.AdmissionError`) to admit the newcomer.

Fault tolerance: queries can carry deadlines and retry policies
(``submit(name, deadline=..., retries=..., backoff=...)``), failures
are isolated per query (a raising operator fails only its own query),
and deterministic fault plans (:mod:`repro.runtime.faults`) can be
installed for chaos testing.  See ``docs/architecture.md`` for the
failure-mode taxonomy.

Example::

    from repro.server import AnalyticsServer

    server = AnalyticsServer(scale_factor=0.01, scheduler="tuning")
    short = server.submit("Q6")
    long_ = server.submit("Q18")
    server.run()
    print(server.result(short))          # real query result
    print(server.latency(short) * 1e3, "ms")

Streaming: :meth:`submit` returns a
:class:`~repro.runtime.handle.QueryHandle` — an ``int`` ticket that
doubles as a result cursor.  On the threaded backend row batches can be
consumed while the query runs (``handle.fetch(n)`` or iteration), with
the producer throttled by the bounded result channel; on the
virtual-time backends the same calls replay the stream after
``drain()``.  ``server.cancel(ticket)`` aborts an in-flight query: its
stream fails with :class:`~repro.errors.QueryCancelledError` and the
scheduler winds the query down through the normal finalization
protocol, freeing its admission slot.

::

    server = AnalyticsServer(scale_factor=0.01, backend="threaded")
    server.start()
    handle = server.submit("QS")         # large streaming scan
    for batch in handle:                 # batches arrive incrementally
        consume(batch)
    server.shutdown()
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import SchedulerConfig, make_scheduler
from repro.core.registry import available_schedulers
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import EngineEnvironment, engine_query_spec
from repro.engine.queries import ENGINE_QUERIES
from repro.errors import AdmissionError, ReproError
from repro.metrics.latency import LatencyRecord
from repro.runtime.backend import BackendState, ExecutionBackend
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.handle import QueryHandle
from repro.runtime.process import ProcessBackend, engine_environment_factory
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.threaded import ThreadedBackend

#: Names accepted for the ``backend`` constructor argument.
BACKENDS = ("simulated", "threaded", "process")


def _environment_from_database(db: TpchDatabase) -> EngineEnvironment:
    """Picklable environment factory for hand-built databases.

    Used by the process backend when the database cannot be regenerated
    from ``(scale_factor, seed)``: the tables themselves are pickled
    into the worker once per drain.
    """
    return EngineEnvironment(db)


class AnalyticsServer:
    """Schedule real queries against a generated TPC-H database."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        scheduler: str = "tuning",
        n_workers: int = 4,
        t_max: float = 0.002,
        seed: int = 0,
        database: Optional[TpchDatabase] = None,
        backend: str = "simulated",
        max_pending: Optional[int] = None,
        admission: str = "reject",
        retry_budget: int = 16,
    ) -> None:
        if scheduler not in available_schedulers():
            raise ReproError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{available_schedulers()}"
            )
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
            )
        if admission not in ("reject", "block", "shed"):
            raise ReproError(
                f"unknown admission policy {admission!r}; choose from "
                f"['reject', 'block', 'shed']"
            )
        if admission == "block" and backend != "threaded":
            raise ReproError(
                "admission='block' needs the threaded backend: in virtual "
                "time nothing completes between submissions, so blocking "
                "would deadlock — use admission='reject' or drain() first"
            )
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be at least 1")
        if retry_budget < 0:
            raise ReproError("retry_budget must be >= 0")
        self.database = database or generate_tpch(scale_factor, seed=seed)
        self._scheduler_name = scheduler
        self._config = SchedulerConfig(
            n_workers=n_workers,
            t_max=t_max,
            # Interactive sessions are short; scale the tuning windows.
            tracking_duration=0.5,
            refresh_duration=2.0,
        )
        self._seed = seed
        self._max_pending = max_pending
        self._admission = admission
        self._backend_name = backend
        self._backend = self._make_backend()
        #: Server-wide cap on retry resubmissions (across all tickets);
        #: prevents a persistently failing workload from retrying forever.
        self._retry_budget = retry_budget
        #: Retry resubmissions performed so far.
        self.retries_used = 0
        #: Per-original-ticket retry policy:
        #: {"spec", "left", "attempt", "backoff"}.
        self._retry_state: Dict[int, dict] = {}
        #: old backend ticket -> its replacement after a retry; chains.
        self._aliases: Dict[int, int] = {}
        #: ticket -> submission priority (shedding victims are the
        #: lowest-priority pending queries).
        self._priorities: Dict[int, int] = {}
        #: Deterministic backoff jitter (decorrelates retry storms
        #: without wall-clock randomness).
        self._retry_rng = np.random.default_rng(seed)

    def _make_backend(self) -> ExecutionBackend:
        if self._backend_name == "threaded":
            return ThreadedBackend(
                make_scheduler(self._scheduler_name, self._config),
                EngineEnvironment(self.database),
            )
        if self._backend_name == "process":
            from functools import partial

            db = self.database
            if db.generated:
                # Pure function of (scale_factor, seed): regenerate in
                # the worker (memoized there) instead of pickling the
                # relation data across on every drain.
                environment_factory = partial(
                    engine_environment_factory, db.scale_factor, db.seed
                )
            else:
                environment_factory = partial(_environment_from_database, db)
            return ProcessBackend(
                partial(make_scheduler, self._scheduler_name, self._config),
                seed=self._seed,
                environment_factory=environment_factory,
            )
        return SimulatedBackend(
            lambda: make_scheduler(self._scheduler_name, self._config),
            seed=self._seed,
            environment_factory=lambda: EngineEnvironment(self.database),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def available_queries(self) -> Tuple[str, ...]:
        """Names of the queries with real engine plans."""
        return ENGINE_QUERIES

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend (exposed for tests and monitoring)."""
        return self._backend

    @property
    def state(self) -> BackendState:
        """Lifecycle phase: NEW, RUNNING or CLOSED."""
        return self._backend.state

    @property
    def pending_count(self) -> int:
        """Queries submitted but not yet completed."""
        return self._backend.pending_count

    @property
    def completed_count(self) -> int:
        """Queries with a latency record."""
        return self._backend.completed_count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing (threaded: spawn the worker threads).

        Idempotent while running; raises after :meth:`shutdown`.
        Calling :meth:`drain`/:meth:`run` starts the server implicitly.
        """
        self._backend.start()

    def drain(self) -> List[LatencyRecord]:
        """Run every submitted query to completion; return new records.

        The server stays usable afterwards — submit more and drain
        again.  Raises after :meth:`shutdown`.

        With per-query ``retries``, drain loops until no transient
        failure is eligible for resubmission; the returned list contains
        the records of **every** attempt (failed ones included), so the
        full failure history is observable.  Use :meth:`record` on a
        ticket for its latest attempt only.
        """
        records = list(self._backend.drain())
        while self._maybe_retry():
            records.extend(self._backend.drain())
        return records

    def run(self) -> List[LatencyRecord]:
        """Historical batch entry point; equivalent to :meth:`drain`."""
        return self.drain()

    def shutdown(self) -> None:
        """Stop executing and release workers (idempotent).

        Afterwards :meth:`submit`, :meth:`drain` and :meth:`run` raise
        :class:`~repro.errors.ReproError`; completed results, records
        and latencies remain readable.
        """
        self._backend.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        priority: int = 0,
    ) -> QueryHandle:
        """Submit one query; returns its :class:`QueryHandle` ticket.

        The handle is an ``int`` (usable everywhere a ticket is) that
        additionally exposes the streaming cursor API: ``fetch(n)``,
        iteration, ``cancel()`` and ``progress()``.

        On the simulated backend ``at`` is the virtual arrival time
        relative to the next :meth:`drain` (default 0.0).  On the
        threaded backend queries arrive at the wall-clock moment of the
        call and may be submitted while the server is executing; ``at``
        must be omitted.

        ``deadline`` bounds the query's end-to-end latency in the
        backend's time base (seconds after arrival); a query that misses
        it fails with :class:`~repro.errors.QueryTimeoutError` through
        the scheduler's abort protocol.  Deadline misses are permanent —
        they are never retried.

        ``retries`` allows up to that many automatic resubmissions after
        *transient* failures (worker deaths, injected faults), with
        exponential ``backoff`` plus deterministic jitter between
        attempts, capped by the server-wide ``retry_budget``.  Permanent
        failures (plan errors, timeouts, cancellations, shedding) are
        never retried.  Retried tickets stay valid: :meth:`poll`,
        :meth:`wait`, :meth:`result`, :meth:`record` and :meth:`latency`
        transparently follow the ticket to its latest attempt.

        Backpressure: with ``max_pending`` set, a full server raises
        :class:`~repro.errors.AdmissionError` (``admission="reject"``),
        waits for a slot (``admission="block"``, threaded only), or
        sheds the lowest-priority pending query to make room
        (``admission="shed"`` — the newcomer is rejected instead when
        nothing pending has a strictly lower ``priority``).
        """
        if name not in ENGINE_QUERIES:
            raise ReproError(
                f"no engine plan for {name!r}; available: {ENGINE_QUERIES}"
            )
        if at is not None and at < 0.0:
            raise ReproError("arrival time must be non-negative")
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if backoff < 0.0:
            raise ReproError("backoff must be >= 0")
        self._check_admission(priority)
        spec = engine_query_spec(name, self.database)
        if deadline is not None:
            spec = replace(spec, deadline=deadline)
        handle = self._backend.submit(spec, at=at)
        ticket = int(handle)
        self._priorities[ticket] = priority
        if retries > 0:
            self._retry_state[ticket] = {
                "spec": spec,
                "at": at,
                "left": retries,
                "attempt": 0,
                "backoff": backoff,
            }
        return handle

    def _check_admission(self, priority: int = 0) -> None:
        limit = self._max_pending
        if limit is None:
            return
        if self._backend.pending_count < limit:
            return
        if self._admission == "reject":
            raise AdmissionError(
                f"server full: {self._backend.pending_count} queries "
                f"pending (max_pending={limit}); retry later or drain()"
            )
        if self._admission == "shed":
            victim = self._shed_victim(priority)
            if victim is None:
                raise AdmissionError(
                    f"server full: {self._backend.pending_count} queries "
                    f"pending (max_pending={limit}) and none has lower "
                    f"priority than {priority}; retry later or drain()"
                )
            self._backend.fail(
                victim,
                AdmissionError(
                    f"query job {victim} shed under overload to admit a "
                    f"priority-{priority} query"
                ),
            )
            return
        # admission == "block": wait for completions to free capacity.
        # Worker failures surface through drain()/wait(); here a closed
        # backend is the only reason to give up.
        while self._backend.pending_count >= limit:
            if self._backend.state is BackendState.CLOSED:
                raise ReproError("server shut down while blocked on admission")
            time.sleep(0.001)

    def _shed_victim(self, priority: int) -> Optional[int]:
        """The pending ticket to shed: lowest priority, newest on ties.

        Only tickets with *strictly* lower priority than the newcomer
        qualify — shedding equals would let two same-priority queries
        evict each other in a loop.
        """
        backend = self._backend
        best: Optional[int] = None
        best_priority = priority
        for ticket in range(backend.submitted_count):
            if ticket in backend.records or backend.cancelled(ticket):
                continue
            if ticket in backend.failures:
                continue
            ticket_priority = self._priorities.get(ticket, 0)
            if ticket_priority < best_priority or (
                best is not None
                and ticket_priority == self._priorities.get(best, 0)
                and ticket > best
            ):
                best = ticket
                best_priority = ticket_priority
        return best

    # ------------------------------------------------------------------
    # Retries
    # ------------------------------------------------------------------
    def _resolve(self, ticket: int) -> int:
        """Follow a ticket through its retry replacements."""
        ticket = int(ticket)
        while ticket in self._aliases:
            ticket = self._aliases[ticket]
        return ticket

    def _maybe_retry(self) -> bool:
        """Resubmit retry-eligible failed tickets; True if any were."""
        resubmitted = False
        for original in list(self._retry_state):
            if self._retry_one(original, sleep=False) is not None:
                resubmitted = True
        return resubmitted

    def _retry_one(self, original: int, sleep: bool) -> Optional[int]:
        """Retry one original ticket if its latest attempt failed.

        Returns the replacement backend ticket, or ``None`` when no
        retry applies (not failed yet, permanent failure, attempts or
        budget exhausted).
        """
        state = self._retry_state.get(original)
        if state is None:
            return None
        current = self._resolve(original)
        backend = self._backend
        if current not in backend.records or not backend.failed(current):
            return None
        if state["left"] <= 0 or self.retries_used >= self._retry_budget:
            return None
        error = backend.failure(current)
        if error is None or not getattr(error, "transient", False):
            return None  # permanent: plan errors, timeouts, shedding
        delay = state["backoff"] * (2.0 ** state["attempt"])
        delay *= 1.0 + 0.25 * float(self._retry_rng.random())
        state["left"] -= 1
        state["attempt"] += 1
        self.retries_used += 1
        if sleep and delay > 0.0:
            # Real time only: on virtual-time backends the backoff is a
            # scheduling fiction (nothing else runs between epochs).
            time.sleep(delay)
        handle = backend.submit(state["spec"], at=state["at"])
        replacement = int(handle)
        self._aliases[current] = replacement
        self._priorities[replacement] = self._priorities.get(original, 0)
        return replacement

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def poll(self, ticket: int) -> Optional[LatencyRecord]:
        """The latency record if the query completed, else ``None``.

        Follows retried tickets to their latest attempt.
        """
        return self._backend.poll(self._resolve(ticket))

    def wait(self, ticket: int, timeout: Optional[float] = None) -> LatencyRecord:
        """Block until one query completes (threaded backend).

        The simulated and process backends complete queries in epochs —
        only inside :meth:`drain` — so an unfinished ticket raises
        instead of blocking forever.  Tickets submitted with ``retries``
        are retried here too: a transient failure resubmits (after the
        backoff) and the wait continues on the replacement attempt.
        """
        ticket = int(ticket)
        if isinstance(self._backend, ThreadedBackend):
            while True:
                record = self._backend.wait(
                    self._resolve(ticket), timeout=timeout
                )
                if (
                    record.failed
                    and self._retry_one(ticket, sleep=True) is not None
                ):
                    continue
                return record
        record = self._backend.poll(self._resolve(ticket))
        if record is None:
            raise ReproError(
                f"ticket {ticket} has not finished; the "
                f"{self._backend_name} backend completes queries in "
                f"drain()/run()"
            )
        return record

    def cancel(self, ticket: int) -> bool:
        """Abort one in-flight query; ``True`` if it was cancelled.

        The ticket's stream fails with
        :class:`~repro.errors.QueryCancelledError`, the scheduler winds
        the query down through the normal finalization protocol, and its
        admission slot frees for subsequent queries.  A query that
        already completed keeps its result (returns ``False``).
        Cancelling a retried ticket cancels its latest attempt and stops
        further retries.
        """
        ticket = int(ticket)
        self._retry_state.pop(ticket, None)
        return self._backend.cancel(self._resolve(ticket))

    def failed(self, ticket: int) -> bool:
        """Whether the ticket's latest attempt failed."""
        return self._backend.failed(self._resolve(ticket))

    def failure(self, ticket: int) -> Optional[BaseException]:
        """The exception that failed the ticket's latest attempt."""
        return self._backend.failure(self._resolve(ticket))

    def result(self, ticket: int):
        """The fully assembled query result for a completed ticket.

        Raises :class:`~repro.errors.QueryCancelledError` for cancelled
        queries, :class:`~repro.errors.QueryFailedError` for failed ones
        (chaining the cause), and :class:`~repro.errors.ReproError` for
        unfinished tickets or tickets consumed as live streams.  Follows
        retried tickets to their latest attempt.
        """
        backend = self._backend
        ticket = self._resolve(ticket)
        if (
            0 <= ticket < backend.submitted_count
            and ticket not in backend.records
            and not backend.cancelled(ticket)
            and ticket not in backend.failures
        ):
            raise ReproError(
                f"ticket {ticket} has no result (did you run()?)"
            )
        return backend.result(ticket)

    def latency(self, ticket: int) -> float:
        """End-to-end latency of a finished query in seconds."""
        record = self._backend.records.get(self._resolve(ticket))
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record.latency

    def record(self, ticket: int) -> LatencyRecord:
        """The full latency record of a finished query (latest attempt)."""
        record = self._backend.records.get(self._resolve(ticket))
        if record is None:
            raise ReproError(f"ticket {ticket} has not finished")
        return record

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(
        self, plan: FaultPlan, *, spent=(), skip_kinds=()
    ) -> FaultInjector:
        """Install a deterministic fault plan on the backend (chaos tests).

        See :mod:`repro.runtime.faults`; install before queries run.
        """
        return self._backend.install_faults(
            plan, spent=spent, skip_kinds=skip_kinds
        )
