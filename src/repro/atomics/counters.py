"""Atomic counters for the task-set finalization protocol.

Each task set owns a finalization counter (Section 2.3, "Task Set
Finalization").  The coordinating worker *increments* it by the number of
workers it marked; marked workers *decrement* it when they finish their
current task.  Because the decrements may land before the coordinator's
increment, the counter can temporarily become negative — the worker whose
decrement (or increment) brings it to exactly zero runs finalization.
"""

from __future__ import annotations


class AtomicCounter:
    """An integer with fetch-add semantics; may legally go negative."""

    __slots__ = ("_value", "op_count")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        #: Number of fetch-add operations, for overhead accounting.
        self.op_count = 0

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        old = self._value
        self._value = old + delta
        self.op_count += 1
        return old

    def add_and_fetch(self, delta: int) -> int:
        """Atomically add ``delta``; return the *new* value."""
        self.fetch_add(delta)
        return self._value

    def load(self) -> int:
        """Relaxed read of the current value."""
        return self._value

    def store(self, value: int) -> None:
        """Relaxed store (only used when resetting between task sets)."""
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomicCounter({self._value})"
