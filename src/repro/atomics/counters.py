"""Atomic counters for the task-set finalization protocol.

Each task set owns a finalization counter (Section 2.3, "Task Set
Finalization").  The coordinating worker *increments* it by the number of
workers it marked; marked workers *decrement* it when they finish their
current task.  Because the decrements may land before the coordinator's
increment, the counter can temporarily become negative — the worker whose
decrement (or increment) brings it to exactly zero runs finalization.

The fetch-add is a genuine atomic: a lock serialises the read-modify-write
so the counter is safe under real OS threads (the
:class:`~repro.runtime.threaded.ThreadedBackend`), not only under the
sequential discrete-event simulation.  The exactly-one-finalizer guarantee
rests on this: two concurrent ``add_and_fetch`` calls can never both
observe zero.
"""

from __future__ import annotations

import threading


class AtomicCounter:
    """An integer with fetch-add semantics; may legally go negative."""

    __slots__ = ("_value", "_lock", "op_count")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()
        #: Number of fetch-add operations, for overhead accounting.
        self.op_count = 0

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = old + delta
            self.op_count += 1
        return old

    def add_and_fetch(self, delta: int) -> int:
        """Atomically add ``delta``; return the *new* value."""
        return self.fetch_add(delta) + delta

    def load(self) -> int:
        """Relaxed read of the current value."""
        return self._value

    def store(self, value: int) -> None:
        """Relaxed store (only used when resetting between task sets)."""
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomicCounter({self._value})"
