"""Wide atomic bitmasks built from 64-bit words.

The paper (Section 2.3) supports an arbitrary number of scheduler slots by
composing each update mask out of two atomic eight-byte integers.  A
complete mask operation is *not* atomic; only the individual word
operations are.  That is sufficient because the protocol only relies on
two word-level primitives:

* ``fetch_or(word, bits)`` — publish new set bits without disturbing
  concurrent publishers, and
* ``exchange(word, 0)`` — drain all outstanding bits exactly once.

No bit published through ``fetch_or`` can ever be lost: it stays in the
word until some ``exchange`` returns it, and ``exchange`` returns it to
exactly one caller.

Concurrency: the word-level primitives are *real* atomics — each word is
guarded by its own lock, exactly the relaxation the paper allows (word
granularity, no whole-mask atomicity).  The :class:`ThreadedBackend
<repro.runtime.threaded.ThreadedBackend>` therefore contends these masks
from genuine OS threads; relaxed reads (:meth:`AtomicBitmask.any_set`,
:meth:`AtomicBitmask.peek`) stay lock-free, matching the cheap emptiness
probe of §2.3.
"""

from __future__ import annotations

import threading
from typing import Iterator, List

#: Number of bits per mask word, mirroring a C++ ``std::atomic<uint64_t>``.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


def iter_set_bits(value: int) -> Iterator[int]:
    """Yield the indices of all set bits in ``value`` in ascending order.

    The paper extracts set bits by repeatedly counting leading zeros and
    shifting (``clz`` / ``shl``).  Python integers expose the equivalent
    through ``bit_length``; we iterate from the lowest bit which is the
    natural order for slot processing.

    >>> list(iter_set_bits(0b1010))
    [1, 3]
    """
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


class AtomicBitmask:
    """A bitmask of ``nbits`` bits stored in ceil(nbits / 64) atomic words.

    Supported operations mirror the scheduler protocol:

    * :meth:`set_bit` — atomic ``fetch_or`` on the owning word.
    * :meth:`drain` — atomic ``exchange`` with zero per word; returns the
      indices of all bits that were set.  Each set bit is returned to
      exactly one drainer.
    * :meth:`peek` / :meth:`test_bit` — relaxed reads used by tests.

    The class counts word-level operations so that the overhead accounting
    for Figure 10 can charge a per-operation cost.
    """

    def __init__(self, nbits: int) -> None:
        if nbits <= 0:
            raise ValueError("bitmask must have at least one bit")
        self._nbits = nbits
        nwords = (nbits + WORD_BITS - 1) // WORD_BITS
        self._words: List[int] = [0] * nwords
        #: One lock per word: the paper's word-level atomics.  A complete
        #: mask operation spanning several words is deliberately *not*
        #: atomic (the protocol tolerates that relaxation).
        self._word_locks = [threading.Lock() for _ in range(nwords)]
        self.fetch_or_count = 0
        self.exchange_count = 0

    @property
    def nbits(self) -> int:
        """Number of addressable bits."""
        return self._nbits

    @property
    def nwords(self) -> int:
        """Number of 64-bit words backing the mask."""
        return len(self._words)

    def _check_index(self, bit: int) -> None:
        if not 0 <= bit < self._nbits:
            raise IndexError(f"bit {bit} out of range [0, {self._nbits})")

    def set_bit(self, bit: int) -> bool:
        """Atomically set ``bit`` via ``fetch_or``; return the previous value.

        Returns ``True`` if the bit was already set (the publish was
        redundant), ``False`` if this call transitioned it from 0 to 1.
        """
        self._check_index(bit)
        word, offset = divmod(bit, WORD_BITS)
        mask = 1 << offset
        with self._word_locks[word]:
            old = self._words[word]
            self._words[word] = (old | mask) & _WORD_MASK
            self.fetch_or_count += 1
        return bool(old & mask)

    def drain(self) -> List[int]:
        """Atomically exchange every word with zero; return drained bit indices.

        The exchange happens word by word — exactly the relaxation the
        paper allows.  A publisher racing between the two word exchanges
        will simply be drained on the next call; its bit is never lost.
        """
        drained: List[int] = []
        for word_index in range(len(self._words)):
            with self._word_locks[word_index]:
                old = self._words[word_index]
                self._words[word_index] = 0
                self.exchange_count += 1
            base = word_index * WORD_BITS
            drained.extend(base + b for b in iter_set_bits(old))
        return drained

    def drain_word(self, word_index: int) -> List[int]:
        """Exchange a single word with zero (for interleaving tests)."""
        with self._word_locks[word_index]:
            old = self._words[word_index]
            self._words[word_index] = 0
            self.exchange_count += 1
        base = word_index * WORD_BITS
        return [base + b for b in iter_set_bits(old)]

    def test_bit(self, bit: int) -> bool:
        """Relaxed read of a single bit."""
        self._check_index(bit)
        word, offset = divmod(bit, WORD_BITS)
        return bool(self._words[word] & (1 << offset))

    def peek(self) -> List[int]:
        """Relaxed read of all currently set bit indices (no draining)."""
        result: List[int] = []
        for word_index, word in enumerate(self._words):
            base = word_index * WORD_BITS
            result.extend(base + b for b in iter_set_bits(word))
        return result

    def any_set(self) -> bool:
        """Relaxed check whether any bit is set (cheap emptiness probe).

        The scheduler uses this before draining: if no writes happened
        since the last drain the synchronization step is nearly free and
        causes no cache invalidation (Section 2.3).
        """
        return any(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = ",".join(str(b) for b in self.peek())
        return f"AtomicBitmask(nbits={self._nbits}, set=[{bits}])"
