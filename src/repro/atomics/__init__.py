"""Models of the lock-free primitives used by the paper's scheduler.

The original system is written in C++ and relies on three atomic building
blocks: wide atomic bitmasks (built from multiple 8-byte words), tagged
pointers for invalidating global slots without removing them, and plain
atomic counters for the task-set finalization protocol.

Python's discrete-event simulation executes one worker step at a time, so
plain Python objects would technically suffice.  We nevertheless model the
primitives explicitly, word-for-word, for two reasons:

* the scheduler code reads like the paper (``fetch_or``, ``exchange``,
  pointer tagging, counting leading zeros), which makes the reproduction
  auditable against Section 2 of the paper; and
* the interleaving tests in ``tests/atomics`` can drive the word-granular
  operations in randomized orders and check that no update is ever lost,
  which is the property the paper's design depends on ("it is sufficient
  if individual steps in an operation satisfy atomicity constraints").
"""

from repro.atomics.bitmask import AtomicBitmask, iter_set_bits
from repro.atomics.counters import AtomicCounter
from repro.atomics.tagged import TaggedPointer

__all__ = [
    "AtomicBitmask",
    "AtomicCounter",
    "TaggedPointer",
    "iter_set_bits",
]
