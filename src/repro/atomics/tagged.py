"""Tagged pointers for optimistic slot invalidation.

Section 2.3 handles the "task set finished" event optimistically: instead
of notifying every worker, the slot's pointer is *tagged* as invalid.  A
worker that later picks the slot reads the tagged value, notices it is no
longer valid, and disables the slot in its local activity mask.

In C++ this is a pointer with a stolen low bit; here it is a tiny wrapper
holding a payload and a validity flag with compare-and-swap semantics.
The writes (``store`` / ``tag_invalid`` / ``clear``) are serialised by a
lock so that :meth:`tag_invalid` is a *real* compare-and-swap under OS
threads: exactly one of any number of concurrent callers observes the
valid → invalid transition and becomes the finalization coordinator.
Reads stay lock-free (a stale read is repaired lazily, §2.3).
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Tuple


class TaggedPointer:
    """A (payload, valid) pair with atomic read / tag / store semantics."""

    __slots__ = ("_payload", "_valid", "_lock")

    def __init__(self, payload: Any = None, valid: bool = False) -> None:
        self._payload = payload
        self._valid = valid and payload is not None
        self._lock = threading.Lock()

    def load(self) -> Tuple[Optional[Any], bool]:
        """Atomically read ``(payload, valid)``."""
        return self._payload, self._valid

    def store(self, payload: Any) -> None:
        """Atomically publish a new valid payload."""
        with self._lock:
            self._payload = payload
            self._valid = payload is not None

    def tag_invalid(self) -> bool:
        """Mark the current payload as invalid; keep it readable.

        Returns ``True`` if this call performed the transition, ``False``
        if the pointer was already invalid (another worker won the race).
        This compare-and-swap behaviour lets exactly one worker act as
        the finalization coordinator.
        """
        with self._lock:
            if not self._valid:
                return False
            self._valid = False
            return True

    def clear(self) -> None:
        """Reset to the empty state (slot free for a new resource group)."""
        with self._lock:
            self._payload = None
            self._valid = False

    @property
    def payload(self) -> Optional[Any]:
        """Relaxed read of the payload regardless of validity."""
        return self._payload

    @property
    def valid(self) -> bool:
        """Relaxed read of the validity flag."""
        return self._valid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "valid" if self._valid else "tagged"
        return f"TaggedPointer({self._payload!r}, {state})"
