"""The plan-fragment result cache.

Completed fragment results are cached under their normalized fingerprint
(:mod:`repro.sharing.fingerprint`), so an identical back-to-back query —
the common dashboard pattern — skips execution entirely and is served
the cached chunks at its arrival time.

Invalidation story: the TPC-H database a server owns is immutable, so
entries never go stale on their own.  Any code path that *does* mutate
data (none exists today) must call :meth:`FragmentCache.invalidate`,
which drops every entry and bumps the cache *epoch*; entries are
tagged with the epoch they were stored under and a stale-epoch lookup
can never hit.  Capacity is bounded by ``max_entries`` with LRU
eviction (evictions are counted on the shared
:class:`~repro.sharing.fold.SharingStats`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.sharing.fold import SharingStats

#: Distinguishes "no entry" from a cached empty result.
MISS = object()


class FragmentCache:
    """Bounded LRU cache of completed fragment results, epoch-tagged."""

    def __init__(
        self,
        max_entries: int = 64,
        stats: Optional[SharingStats] = None,
    ) -> None:
        if max_entries < 1:
            raise ReproError("fragment cache needs max_entries >= 1")
        self.max_entries = max_entries
        self.stats = stats if stats is not None else SharingStats()
        #: Monotone invalidation epoch; bumped by :meth:`invalidate`.
        self.epoch = 0
        self._entries: "OrderedDict[str, Tuple[int, object]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str):
        """The cached value, or :data:`MISS`.  Hits count and refresh LRU."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return MISS
        epoch, value = entry
        if epoch != self.epoch:  # pragma: no cover - invalidate() clears
            del self._entries[fingerprint]
            return MISS
        self._entries.move_to_end(fingerprint)
        self.stats.cache_hits += 1
        return value

    def put(self, fingerprint: str, value: object) -> None:
        """Store one completed fragment result under its fingerprint."""
        entries = self._entries
        if fingerprint in entries:
            entries.move_to_end(fingerprint)
        entries[fingerprint] = (self.epoch, value)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.cache_evictions += 1

    def invalidate(self) -> None:
        """Drop every entry and start a new epoch (explicit, never timed)."""
        self._entries.clear()
        self.epoch += 1

    def snapshot(self) -> dict:
        """Introspection: size, bound and epoch."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "epoch": self.epoch,
        }
