"""Plan normalization: canonical fingerprints for plans and fragments.

Work sharing needs to recognize that two in-flight queries would do the
same work.  The recognizer is a *fingerprint*: a canonical string built
by walking the plan structure (tables, filter/projection expression
trees, join keys, aggregation shape) and hashing it with a content hash.

Two fingerprint families exist:

* **plan fingerprints** (:func:`plan_fingerprint`,
  :func:`pipeline_fingerprint`) walk real engine plans
  (:class:`~repro.engine.pipeline.QueryPlan`) — the ground truth used by
  the fingerprint tests and the fragment result cache;
* **spec fingerprints** (:func:`spec_fingerprint`,
  :func:`spec_fragment_fingerprint`) canonicalize
  :class:`~repro.core.specs.QuerySpec` objects, which is what the
  backends and the cluster placement policy see at submission time.
  Engine-mode specs are derived deterministically from the plans
  (:func:`~repro.engine.execution.engine_query_spec`), so equal spec
  fingerprints imply equal plans on the same database.

Scheduling metadata (tags, priorities, deadlines, SLA decoration) is
deliberately **excluded**: it changes *when* a query runs, never *what*
it computes, so it must not break fold compatibility.

Determinism: everything is encoded to explicit strings and digested
with :mod:`hashlib` — never Python's ``hash()``, whose output varies
with ``PYTHONHASHSEED``.  Dict-valued operator attributes (projection
outputs, aggregate alias maps) are encoded in insertion order, which is
the plan construction order and therefore stable.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.specs import QuerySpec
from repro.engine import expressions as ex
from repro.engine import operators as op


def _digest(text: str) -> str:
    """Stable short content hash of a canonical string."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Expression trees
# ----------------------------------------------------------------------
def expression_key(expr) -> str:
    """Canonical string of one expression tree."""
    if isinstance(expr, ex.Col):
        return f"col({expr.name})"
    if isinstance(expr, ex.Const):
        return f"const({expr.value!r})"
    if isinstance(expr, ex.Arith):
        return (
            f"arith({expr.op},{expression_key(expr.left)},"
            f"{expression_key(expr.right)})"
        )
    if isinstance(expr, ex.Compare):
        return (
            f"cmp({expr.op},{expression_key(expr.left)},"
            f"{expression_key(expr.right)})"
        )
    if isinstance(expr, ex.And):
        return "and(" + ",".join(expression_key(t) for t in expr.terms) + ")"
    if isinstance(expr, ex.Or):
        return "or(" + ",".join(expression_key(t) for t in expr.terms) + ")"
    if isinstance(expr, ex.Not):
        return f"not({expression_key(expr.term)})"
    if isinstance(expr, ex.InSet):
        values = ",".join(repr(v) for v in expr.values)
        return f"in({expression_key(expr.term)},[{values}])"
    return f"expr:{type(expr).__name__}"


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def transform_key(transform) -> str:
    """Canonical string of one batch-to-batch operator."""
    if isinstance(transform, op.Filter):
        return f"filter({expression_key(transform.predicate)})"
    if isinstance(transform, op.Project):
        outputs = ",".join(
            f"{name}={expression_key(expr)}"
            for name, expr in transform.outputs.items()
        )
        return f"project({outputs})"
    if isinstance(transform, op.HashJoinProbe):
        payload = ",".join(sorted(transform.payload_columns))
        return f"join({transform.probe_key};{payload})"
    if isinstance(transform, op.SemiJoinProbe):
        return f"semijoin({transform.probe_key})"
    if isinstance(transform, op.AntiJoinProbe):
        return f"antijoin({transform.probe_key})"
    return f"transform:{type(transform).__name__}"


def sink_key(sink) -> str:
    """Canonical string of a pipeline's terminating sink (its shape)."""
    if isinstance(sink, op.ChannelSink):
        # A channel wrapper changes delivery, not semantics.
        return sink_key(sink.inner)
    if isinstance(sink, op.HashAggregateSink):
        return (
            "hashagg(by=" + ",".join(sink.group_columns)
            + ";sum=" + ",".join(
                f"{a}={expression_key(e)}" for a, e in sink.sums.items()
            )
            + ";min=" + ",".join(
                f"{a}={expression_key(e)}" for a, e in sink.mins.items()
            )
            + ";max=" + ",".join(
                f"{a}={expression_key(e)}" for a, e in sink.maxs.items()
            )
            + ";avg=" + ",".join(
                f"{a}={expression_key(e)}" for a, e in sink.avgs.items()
            )
            + f";count={sink.count_alias})"
        )
    if isinstance(sink, op.ScalarAggregateSink):
        sums = ",".join(
            f"{a}={expression_key(e)}" for a, e in sink.sums.items()
        )
        return f"scalaragg({sums})"
    if isinstance(sink, op.HashJoinBuildSink):
        return (
            f"joinbuild({sink.key_column};"
            + ",".join(sink.payload_columns) + ")"
        )
    if isinstance(sink, op.TopKSink):
        return (
            f"topk({sink.sort_column},{sink.k};"
            + ",".join(sink.payload_columns) + ")"
        )
    if isinstance(sink, op.SortSink):
        return (
            "sort(" + ",".join(sink.sort_columns)
            + f";desc={sink.descending};limit={sink.limit};"
            + ",".join(sink.payload_columns) + ")"
        )
    if isinstance(sink, op.CollectSink):
        return "collect(" + ",".join(sink.columns) + ")"
    return f"sink:{type(sink).__name__}"


# ----------------------------------------------------------------------
# Pipelines and plans
# ----------------------------------------------------------------------
def pipeline_key(pipeline) -> str:
    """Canonical string of one engine pipeline (pre-hash)."""
    name = getattr(pipeline, "name", type(pipeline).__name__)
    columns = getattr(pipeline, "columns", None)
    transforms = getattr(pipeline, "transforms", ())
    sink = getattr(pipeline, "sink", None)
    # The source is either a base table (the pipeline name records which)
    # or a view over an earlier pipeline of the same plan; the distinction
    # is all the key needs — build-side structure is covered by the build
    # pipeline's own key.
    source_kind = "view" if callable(getattr(pipeline, "_source", None)) else "base"
    parts: List[str] = [
        f"pipeline({name};{source_kind};"
        + ("*" if columns is None else ",".join(columns)) + ")"
    ]
    parts.extend(transform_key(t) for t in transforms)
    parts.append(sink_key(sink) if sink is not None else "sink:none")
    return "|".join(parts)


def pipeline_fingerprint(pipeline) -> str:
    """Content hash of one pipeline/subplan fragment."""
    return _digest(pipeline_key(pipeline))


def plan_fingerprint(plan) -> str:
    """Content hash of a whole :class:`~repro.engine.pipeline.QueryPlan`."""
    return _digest(
        f"plan({plan.name})|"
        + "||".join(pipeline_key(p) for p in plan.pipelines)
    )


def fragment_fingerprint(plan) -> str:
    """Content hash of a plan's *leading scan* fragment only."""
    return pipeline_fingerprint(plan.pipelines[0])


# ----------------------------------------------------------------------
# Scheduler-level specs
# ----------------------------------------------------------------------
def _spec_pipeline_key(pipeline) -> str:
    return (
        f"{pipeline.name};{pipeline.tuples};{pipeline.tuples_per_second!r};"
        f"{pipeline.parallel_efficiency!r};{pipeline.supports_adaptive};"
        f"{pipeline.fixed_morsel_tuples};{pipeline.finalize_seconds!r}"
    )


def spec_fingerprint(spec: QuerySpec) -> str:
    """Canonical key of the work a :class:`QuerySpec` describes.

    Covers the query name, scale factor, compile cost and the full
    pipeline structure; excludes tags, priorities and deadlines, which
    affect scheduling but not the computed result.
    """
    return _digest(
        f"spec({spec.name}@{spec.scale_factor!r};{spec.compile_seconds!r})|"
        + "|".join(_spec_pipeline_key(p) for p in spec.pipelines)
    )


def spec_fragment_fingerprint(spec: QuerySpec) -> str:
    """Canonical key of a spec's leading (scan) pipeline only.

    Unlike :func:`spec_fingerprint` this deliberately drops the query
    name: two different queries whose leading scans match (same table,
    same cardinality, same rate) share a fragment, which is what the
    cluster's sharing-affinity placement keys on.
    """
    return _digest(
        f"fragment(@{spec.scale_factor!r})|"
        + _spec_pipeline_key(spec.pipelines[0])
    )
