"""Fold bookkeeping: sharing counters, live folds and the tee channel.

A *fold* is one shared execution serving several attached queries.  The
virtual-time backend folds at drain time (the epoch is the attach
window); the threaded backend folds *live*: a compatible query arriving
while a leader is in flight attaches to it instead of being admitted,
and the leader's produced chunks are kept in a bounded replay buffer so
attached queries can be served at completion.  When the buffer
overflows, every attached query falls back to a fresh unshared
execution (counted as a replay fallback) and the fold stops accepting
members.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class SharingStats:
    """Observability counters for the work-sharing layer.

    Exported through ``metrics/export.py`` and the server/router stats
    surfaces so the tuner can see them later.
    """

    #: Shared executions that served more than one query.
    folds: int = 0
    #: Queries attached to another query's execution.
    attached_queries: int = 0
    #: Queries served from the fragment result cache.
    cache_hits: int = 0
    #: Cache entries dropped by the LRU bound.
    cache_evictions: int = 0
    #: Attaches abandoned for a fresh scan (replay buffer exhausted).
    replay_fallbacks: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view, key-sorted for deterministic export."""
        return {
            "attached_queries": self.attached_queries,
            "cache_evictions": self.cache_evictions,
            "cache_hits": self.cache_hits,
            "folds": self.folds,
            "replay_fallbacks": self.replay_fallbacks,
        }

    def merge(self, other: "SharingStats") -> "SharingStats":
        """Counter-wise sum (cluster aggregation over shards)."""
        return SharingStats(
            folds=self.folds + other.folds,
            attached_queries=self.attached_queries + other.attached_queries,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_evictions=self.cache_evictions + other.cache_evictions,
            replay_fallbacks=self.replay_fallbacks + other.replay_fallbacks,
        )


@dataclass
class LiveFold:
    """One in-flight shared execution on the threaded backend."""

    fingerprint: str
    leader_job: int
    #: Attached queries: (job id, spec, arrival wall time).
    members: List[Tuple[int, object, float]] = field(default_factory=list)
    #: Accepting new members?  Closed at leader completion or overflow.
    open: bool = True
    #: Leader cancelled mid-flight with members still attached: the
    #: shared execution continues, only the leader's delivery detaches.
    leader_detached: bool = False
    #: Chunks produced so far, kept for member replay at completion.
    replay: List[Tuple[str, object, int]] = field(default_factory=list)
    #: Replay gave up (bound exceeded); members were re-admitted fresh.
    overflowed: bool = False


class TeeChannel:
    """Producer-side channel wrapper that records chunks for replay.

    Wraps a fold leader's :class:`~repro.runtime.channel.ResultChannel`:
    the engine writes through the same producer API (``put_rows`` /
    ``put_final``) and every chunk is both forwarded to the leader and
    appended to the fold's bounded replay buffer.  On overflow the
    buffer is dropped and the recorded callback re-admits the attached
    members as fresh unshared executions.

    Only the producer surface the engine touches is exposed; consumers
    keep reading the real leader channel.
    """

    def __init__(self, inner, fold: LiveFold, bound: int, on_overflow) -> None:
        self.inner = inner
        self.fold = fold
        self.bound = bound
        self._on_overflow = on_overflow
        self._lock = threading.Lock()

    # -- producer API used by ChannelSink / EngineEnvironment ----------
    @property
    def closed(self) -> bool:
        # A detached leader's channel is failed (hence closed), but the
        # fold still needs every chunk for member replay — the engine's
        # "echo the terminal chunk unless closed" guard must keep
        # writing through the tee (the inner put is a silent drop on a
        # failed channel).  Report closed only once recording is
        # pointless too.
        return self.inner.closed and self.fold.overflowed

    @property
    def failed(self) -> bool:
        return self.inner.failed

    @property
    def chunks_put(self) -> int:
        return self.inner.chunks_put

    def put(self, kind: str, payload: object, rows: int) -> None:
        self.inner.put(kind, payload, rows)
        overflow = None
        with self._lock:
            fold = self.fold
            if not fold.overflowed:
                fold.replay.append((kind, payload, rows))
                if len(fold.replay) > self.bound:
                    fold.overflowed = True
                    fold.replay.clear()
                    overflow = fold
        if overflow is not None:
            self._on_overflow(overflow)

    def put_rows(self, payload: object, rows: int) -> None:
        self.put("rows", payload, rows)

    def put_final(self, payload: object, rows: int = 0) -> None:
        self.put("final", payload, rows)

    def close(self) -> None:  # pragma: no cover - backend closes inner
        self.inner.close()

    def fail(self, error: BaseException) -> None:
        self.inner.fail(error)


def fold_size_from_tags(tags) -> int:
    """Parse a ``fold:N`` tag; 1 (unshared) when absent or malformed."""
    for tag in tags:
        if tag.startswith("fold:"):
            try:
                return max(1, int(tag[5:]))
            except ValueError:
                return 1
    return 1


def max_fold_priority(specs) -> Optional[float]:
    """§3.2 fairness for folds: the group's weight is the members' max.

    ``None`` when every member runs at the default weight (so the
    leader's spec is left untouched and the unshared path stays
    bit-identical).
    """
    weights = [
        spec.user_priority for spec in specs if spec.user_priority is not None
    ]
    if not weights:
        return None
    return max(weights + [1.0])
