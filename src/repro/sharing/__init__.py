"""Work sharing: dynamic folding of concurrent queries.

Under heavy traffic many in-flight queries scan the same TPC-H tables
and often *are* the same query (dashboards).  This package folds them —
GraftDB-style dynamic folding of concurrent analytical queries — so N
compatible submissions cost one execution:

* :mod:`repro.sharing.fingerprint` — plan normalization: canonical
  content-hashed keys for plans, pipelines and scheduler-level specs;
* :mod:`repro.sharing.fold` — fold bookkeeping: sharing counters, live
  folds on the threaded backend, and the bounded-replay tee channel;
* :mod:`repro.sharing.cache` — the fragment result cache serving
  identical back-to-back queries without executing them.

The layer is opt-in (``AnalyticsServer(sharing=True)`` /
``ClusterRouter(sharing=True)``); with sharing off every execution path
is bit-identical to the unshared code.
"""

from repro.sharing.cache import MISS, FragmentCache
from repro.sharing.fingerprint import (
    fragment_fingerprint,
    pipeline_fingerprint,
    plan_fingerprint,
    spec_fingerprint,
    spec_fragment_fingerprint,
)
from repro.sharing.fold import (
    LiveFold,
    SharingStats,
    TeeChannel,
    fold_size_from_tags,
    max_fold_priority,
)

__all__ = [
    "MISS",
    "FragmentCache",
    "LiveFold",
    "SharingStats",
    "TeeChannel",
    "fold_size_from_tags",
    "fragment_fingerprint",
    "max_fold_priority",
    "pipeline_fingerprint",
    "plan_fingerprint",
    "spec_fingerprint",
    "spec_fragment_fingerprint",
]
