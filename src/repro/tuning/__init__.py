"""Self-tuning of scheduler and system knobs (Section 4, generalized).

The scheduler periodically tracks the workload seen by a single worker
thread (:mod:`~repro.tuning.tracker`), then *simulates its own execution*
of that workload under candidate knob settings and minimises the mean
relative slowdown.  Two search modes share that replay machinery:

* the paper's directional derivative-free search over ``(lambda,
  d_start)`` (:mod:`~repro.tuning.self_sim` +
  :func:`~repro.tuning.optimizer.optimize`), kept bit-identical; and
* a cost-bounded pattern search over an arbitrary declarative
  :class:`~repro.tuning.knobs.KnobSpace`
  (:func:`~repro.tuning.optimizer.search_knob_space`), which compresses
  the tracked workload (:mod:`~repro.tuning.compress`), ranks candidates
  with a surrogate built from persistent tuning history
  (:mod:`~repro.tuning.history`), and verifies only the top candidates
  on the full workload.

The periodic process — track for ``t_t`` every ``t_r`` seconds,
optimize, broadcast — is orchestrated by
:mod:`~repro.tuning.controller`.
"""

from repro.tuning.compress import (
    FIDELITY_ERROR_FACTOR,
    CompressedWorkload,
    compress_workload,
)
from repro.tuning.controller import (
    TuningController,
    TuningCycleStats,
    scheduler_knob_space,
)
from repro.tuning.cost import COST_FUNCTIONS, get_cost_function
from repro.tuning.history import HistoryEntry, TuningHistory, workload_signature
from repro.tuning.knobs import (
    ChoiceDomain,
    ContinuousDomain,
    Domain,
    IntegerDomain,
    Knob,
    KnobSpace,
    default_knob_space,
    stock_knob,
)
from repro.tuning.optimizer import (
    SIM_STEP_COST,
    KnobSearchResult,
    OptimizationResult,
    choose_dstart_candidates,
    directional_line_search,
    optimize,
    optimize_multivariate,
    search_knob_space,
)
from repro.tuning.replay import ReplayResult, replay_cost, replay_workload
from repro.tuning.self_sim import simulate_policy, simulate_policy_pairs
from repro.tuning.tracker import TrackedQuery, WorkloadTracker

__all__ = [
    "COST_FUNCTIONS",
    "ChoiceDomain",
    "CompressedWorkload",
    "ContinuousDomain",
    "Domain",
    "FIDELITY_ERROR_FACTOR",
    "HistoryEntry",
    "IntegerDomain",
    "Knob",
    "KnobSearchResult",
    "KnobSpace",
    "OptimizationResult",
    "ReplayResult",
    "SIM_STEP_COST",
    "TrackedQuery",
    "TuningController",
    "TuningCycleStats",
    "TuningHistory",
    "WorkloadTracker",
    "choose_dstart_candidates",
    "compress_workload",
    "default_knob_space",
    "directional_line_search",
    "get_cost_function",
    "optimize",
    "optimize_multivariate",
    "replay_cost",
    "replay_workload",
    "scheduler_knob_space",
    "search_knob_space",
    "simulate_policy",
    "simulate_policy_pairs",
    "stock_knob",
    "workload_signature",
]
