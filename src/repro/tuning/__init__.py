"""Self-tuning of the priority-decay parameters (Section 4).

The scheduler periodically tracks the workload seen by a single worker
thread (:mod:`~repro.tuning.tracker`), then *simulates its own execution*
of that workload under candidate ``(lambda, d_start)`` parameters
(:mod:`~repro.tuning.self_sim`) and minimises the mean relative slowdown
with a derivative-free directional search
(:mod:`~repro.tuning.optimizer`).  The periodic process — track for
``t_t`` every ``t_r`` seconds, optimize, broadcast — is orchestrated by
:mod:`~repro.tuning.controller`.
"""

from repro.tuning.controller import TuningController
from repro.tuning.cost import COST_FUNCTIONS, get_cost_function
from repro.tuning.optimizer import (
    OptimizationResult,
    choose_dstart_candidates,
    optimize,
    optimize_multivariate,
)
from repro.tuning.self_sim import simulate_policy, simulate_policy_pairs
from repro.tuning.tracker import TrackedQuery, WorkloadTracker

__all__ = [
    "COST_FUNCTIONS",
    "OptimizationResult",
    "TrackedQuery",
    "TuningController",
    "WorkloadTracker",
    "choose_dstart_candidates",
    "get_cost_function",
    "optimize",
    "optimize_multivariate",
    "simulate_policy",
    "simulate_policy_pairs",
]
