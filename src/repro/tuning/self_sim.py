"""Self-simulation: replaying the tracked workload under a policy (§4).

To evaluate the cost function of Equation 3, the scheduler simulates the
execution of the tracked workload with candidate decay parameters.  The
paper exploits that adaptive morsel execution produces highly regular
traces: "the simulator can thus keep a discretized notion of time,
performing a simple loop over equally spaced scheduling decisions".

We do exactly that: a single simulated worker repeatedly picks the
active query with minimal stride pass, executes one quantum, decays its
priority, and records the completion time.  The cost is the mean
relative slowdown, where each query's baseline is its tracked work (its
latency if it had the worker to itself).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.decay import DecayParameters
from repro.core.worker import STRIDE_SCALE
from repro.tuning.tracker import TrackedQuery


def simulate_policy(
    tracked: Sequence[TrackedQuery],
    params: DecayParameters,
    quantum: float,
) -> Tuple[float, int]:
    """Replay ``tracked`` under ``params``; return (cost, steps).

    ``cost`` is the mean relative slowdown of the tracked queries (the
    paper's Equation 1); ``steps`` counts simulated scheduling decisions
    (used to charge a realistic optimization cost).  For alternative
    objectives use :func:`simulate_policy_pairs` with a cost function
    from :mod:`repro.tuning.cost`.
    """
    pairs, steps = simulate_policy_pairs(tracked, params, quantum)
    if not pairs:
        return 0.0, steps
    cost = sum(latency / base for latency, base in pairs if base > 0.0)
    return cost / len(pairs), steps


def simulate_policy_pairs(
    tracked: Sequence[TrackedQuery],
    params: DecayParameters,
    quantum: float,
) -> Tuple[List[Tuple[float, float]], int]:
    """Replay ``tracked``; return per-query (latency, base) pairs + steps."""
    if not tracked:
        return [], 0
    queries = sorted(tracked, key=lambda q: (q.arrival_offset, q.group_id))
    n_queries = len(queries)

    # Parallel arrays for speed: this loop runs ~10^4 times per candidate.
    remaining: List[float] = [q.work for q in queries]
    arrival: List[float] = [q.arrival_offset for q in queries]
    pass_value: List[float] = [0.0] * n_queries
    quanta_done: List[int] = [0] * n_queries
    priority: List[float] = [params.p0] * n_queries

    active: List[int] = []
    next_arrival_index = 0
    time = 0.0
    global_pass = 0.0
    pairs: List[Tuple[float, float]] = []
    finished = 0
    steps = 0

    while finished < n_queries:
        # Admit everything that has arrived by now.
        while next_arrival_index < n_queries and arrival[next_arrival_index] <= time:
            query_index = next_arrival_index
            next_arrival_index += 1
            if remaining[query_index] <= 0.0:
                # Degenerate zero-work entry: completes instantly.
                finished += 1
                continue
            pass_value[query_index] = global_pass
            active.append(query_index)
        if not active:
            # Idle until the next arrival.
            time = arrival[next_arrival_index]
            continue
        # Pick the active query with minimal pass (stride scheduling).
        best = active[0]
        best_pass = pass_value[best]
        for query_index in active[1:]:
            if pass_value[query_index] < best_pass:
                best_pass = pass_value[query_index]
                best = query_index
        # Execute one quantum (or the final sliver of work).
        work = remaining[best]
        slice_seconds = quantum if work > quantum else work
        fraction = slice_seconds / quantum
        time += slice_seconds
        steps += 1
        remaining[best] = work - slice_seconds
        # Stride pass updates (§2.1, non-preemptive fractional form).
        stride = STRIDE_SCALE / priority[best]
        pass_value[best] += fraction * stride
        total_priority = 0.0
        for query_index in active:
            total_priority += priority[query_index]
        global_pass += fraction * STRIDE_SCALE / total_priority
        # Priority decay after each completed quantum (§3.2).
        quanta_done[best] += 1
        if quanta_done[best] > params.d_start:
            decayed = params.decay * priority[best]
            priority[best] = decayed if decayed > params.p_min else params.p_min
        if remaining[best] <= 0.0:
            active.remove(best)
            finished += 1
            latency = time - arrival[best]
            pairs.append((latency, queries[best].work))
    return pairs, steps
