"""Derivative-free directional search over (lambda, d_start) — §4.

The optimization problem (Equation 3) is non-continuous, so the paper
uses a directional search from derivative-free optimization [Conn et
al.]:

* ``d_start`` candidates are chosen heuristically as the minimal values
  that let 5%, 10%, ..., 35% of the tracked morsels execute without
  decay;
* for each candidate, ``lambda`` is refined by a local line search with
  initial step width 1.0 and directions ±0.05; a failed step halves the
  width, a successful one grows it by 1.5x;
* exactly 7 search steps are performed per starting value so the
  optimization cost is deterministic;
* the best refined point overall wins.  The previous run's optimum
  seeds ``lambda`` (0.9 on the first run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.decay import DecayParameters
from repro.tuning.cost import CostFunction, mean_slowdown_cost
from repro.tuning.self_sim import simulate_policy_pairs
from repro.tuning.tracker import TrackedQuery

#: The undecayed-morsel fractions used to seed d_start (§4, "Optimizer").
DSTART_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
#: Local-search directions for lambda.
SEARCH_DIRECTIONS = (0.05, -0.05)
#: Fixed number of local-search steps (deterministic optimization cost).
SEARCH_STEPS = 7


@dataclass
class OptimizationResult:
    """Outcome of one tuning run."""

    params: DecayParameters
    cost: float
    baseline_cost: float
    evaluations: int
    simulated_steps: int
    tracked_queries: int


def undecayed_fraction(quanta: Sequence[int], d_start: int) -> float:
    """Fraction of tracked quanta that execute before decay begins."""
    total = sum(quanta)
    if total == 0:
        return 1.0
    undecayed = sum(min(n, d_start) for n in quanta)
    return undecayed / total


def choose_dstart_candidates(
    tracked: Sequence[TrackedQuery],
    quantum: float,
    fractions: Sequence[float] = DSTART_FRACTIONS,
) -> List[int]:
    """Minimal d_start values reaching each target undecayed fraction.

    The fraction is monotone in ``d_start``, so each candidate is found
    by binary search over [0, longest query's quantum count].
    """
    quanta = [max(1, int(round(q.work / quantum))) for q in tracked]
    if not quanta:
        return [0]
    upper = max(quanta)
    candidates: List[int] = []
    for fraction in fractions:
        lo, hi = 0, upper
        while lo < hi:
            mid = (lo + hi) // 2
            if undecayed_fraction(quanta, mid) >= fraction:
                hi = mid
            else:
                lo = mid + 1
        candidates.append(lo)
    # Deduplicate while preserving order.
    seen = set()
    unique: List[int] = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def _refine_lambda(
    tracked: Sequence[TrackedQuery],
    base_params: DecayParameters,
    d_start: int,
    lambda0: float,
    quantum: float,
    cost_fn: CostFunction = mean_slowdown_cost,
) -> Tuple[float, float, int, int]:
    """Local line search on lambda for a fixed d_start.

    Returns ``(best_lambda, best_cost, evaluations, simulated_steps)``.
    """
    evaluations = 0
    simulated_steps = 0

    def evaluate(lam: float) -> float:
        nonlocal evaluations, simulated_steps
        pairs, steps = simulate_policy_pairs(
            tracked, base_params.with_values(lam, d_start), quantum
        )
        evaluations += 1
        simulated_steps += steps
        return cost_fn(pairs)

    current_lambda = min(1.0, max(0.0, lambda0))
    current_cost = evaluate(current_lambda)
    step_width = 1.0
    for _ in range(SEARCH_STEPS):
        candidates = []
        for direction in SEARCH_DIRECTIONS:
            lam = current_lambda + step_width * direction
            if 0.0 <= lam <= 1.0:
                candidates.append((evaluate(lam), lam))
        improving = [c for c in candidates if c[0] < current_cost]
        if improving:
            current_cost, current_lambda = min(improving)
            step_width *= 1.5
        else:
            step_width *= 0.5
    return current_lambda, current_cost, evaluations, simulated_steps


def optimize(
    tracked: Sequence[TrackedQuery],
    current: DecayParameters,
    quantum: float,
    cost_fn: Optional[CostFunction] = None,
) -> OptimizationResult:
    """Solve Equation 3 on the tracked workload; return the best params.

    ``cost_fn`` defaults to the paper's mean relative slowdown; pass one
    of :data:`repro.tuning.cost.COST_FUNCTIONS` for tail-focused or
    fairness-focused tuning ("other cost functions could be considered
    as well", §3.2).
    """
    cost_fn = cost_fn or mean_slowdown_cost
    if not tracked:
        return OptimizationResult(
            params=current,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            simulated_steps=0,
            tracked_queries=0,
        )
    evaluations = 0
    simulated_steps = 0
    baseline_pairs, steps = simulate_policy_pairs(tracked, current, quantum)
    baseline_cost = cost_fn(baseline_pairs)
    evaluations += 1
    simulated_steps += steps

    best_cost = baseline_cost
    best_params = current
    for d_start in choose_dstart_candidates(tracked, quantum):
        lam, cost, n_eval, n_steps = _refine_lambda(
            tracked, current, d_start, current.decay, quantum, cost_fn
        )
        evaluations += n_eval
        simulated_steps += n_steps
        if cost < best_cost:
            best_cost = cost
            best_params = current.with_values(lam, d_start)
    return OptimizationResult(
        params=best_params,
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        simulated_steps=simulated_steps,
        tracked_queries=len(tracked),
    )


#: Multivariate search directions: joint (lambda, d_start) moves.  The
#: paper tried this variant and found the heuristic d_start seeding more
#: stable; we ship it as the documented extension so the comparison can
#: be reproduced (see tests/tuning/test_optimizer.py).
MULTIVARIATE_DIRECTIONS = (
    (0.05, 0),
    (-0.05, 0),
    (0.0, 1),
    (0.0, -1),
    (0.05, 1),
    (-0.05, -1),
)


def optimize_multivariate(
    tracked: Sequence[TrackedQuery],
    current: DecayParameters,
    quantum: float,
    cost_fn: Optional[CostFunction] = None,
    search_steps: int = 2 * SEARCH_STEPS,
) -> OptimizationResult:
    """Joint directional search over (lambda, d_start).

    §4: "We also tried a multivariate directional search procedure, but
    found that choosing d_start heuristically provides more stable
    parameter choices."  This implementation lets users reproduce that
    comparison: a pattern search starting from the current parameters,
    moving in combined (lambda, d_start) directions with the same
    halve-on-fail / grow-on-success step-width schedule.
    """
    cost_fn = cost_fn or mean_slowdown_cost
    if not tracked:
        return OptimizationResult(
            params=current,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            simulated_steps=0,
            tracked_queries=0,
        )
    evaluations = 0
    simulated_steps = 0

    def evaluate(lam: float, d_start: int) -> float:
        nonlocal evaluations, simulated_steps
        pairs, steps = simulate_policy_pairs(
            tracked, current.with_values(lam, d_start), quantum
        )
        evaluations += 1
        simulated_steps += steps
        return cost_fn(pairs)

    best_lambda = min(1.0, max(0.0, current.decay))
    best_dstart = max(0, current.d_start)
    best_cost = evaluate(best_lambda, best_dstart)
    baseline_cost = best_cost
    step_width = 1.0
    max_dstart = max(
        1, max(int(round(q.work / quantum)) for q in tracked)
    )
    for _ in range(search_steps):
        candidates = []
        for d_lambda, d_dstart in MULTIVARIATE_DIRECTIONS:
            lam = best_lambda + step_width * d_lambda
            dstart = best_dstart + int(round(step_width * d_dstart))
            if 0.0 <= lam <= 1.0 and 0 <= dstart <= max_dstart:
                candidates.append((evaluate(lam, dstart), lam, dstart))
        improving = [c for c in candidates if c[0] < best_cost]
        if improving:
            best_cost, best_lambda, best_dstart = min(improving)
            step_width *= 1.5
        else:
            step_width *= 0.5
    return OptimizationResult(
        params=current.with_values(best_lambda, best_dstart),
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        simulated_steps=simulated_steps,
        tracked_queries=len(tracked),
    )
