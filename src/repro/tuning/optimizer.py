"""Derivative-free directional search over (lambda, d_start) — §4.

The optimization problem (Equation 3) is non-continuous, so the paper
uses a directional search from derivative-free optimization [Conn et
al.]:

* ``d_start`` candidates are chosen heuristically as the minimal values
  that let 5%, 10%, ..., 35% of the tracked morsels execute without
  decay;
* for each candidate, ``lambda`` is refined by a local line search with
  initial step width 1.0 and directions ±0.05; a failed step halves the
  width, a successful one grows it by 1.5x;
* exactly 7 search steps are performed per starting value so the
  optimization cost is deterministic;
* the best refined point overall wins.  The previous run's optimum
  seeds ``lambda`` (0.9 on the first run).

The module now hosts two searches over that shared machinery:

* :func:`optimize` — the paper's (lambda, d_start) special case, kept
  bit-identical to the original implementation (the §4/Figure 6
  experiments gate on it, see tests/tuning/test_bit_identity.py);
* :func:`search_knob_space` — a pluggable pattern search over any
  :class:`repro.tuning.knobs.KnobSpace`, evaluated against the
  whole-system replay cost model under an explicit step budget, with
  greedy workload compression, surrogate ranking from tuning history,
  and full-workload verification of only the top candidates (the WAter
  recipe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.decay import DecayParameters
from repro.tuning.compress import compress_workload
from repro.tuning.cost import CostFunction, mean_slowdown_cost
from repro.tuning.history import TuningHistory, workload_signature
from repro.tuning.knobs import KnobSpace
from repro.tuning.replay import replay_cost
from repro.tuning.self_sim import simulate_policy_pairs
from repro.tuning.tracker import TrackedQuery

#: The undecayed-morsel fractions used to seed d_start (§4, "Optimizer").
DSTART_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
#: Local-search directions for lambda.
SEARCH_DIRECTIONS = (0.05, -0.05)
#: Fixed number of local-search steps (deterministic optimization cost).
SEARCH_STEPS = 7
#: Simulated seconds charged per replay / self-simulation step; converts
#: the controller's wall-clock tuning budget into a step budget.  Matches
#: the §4 calibration in :mod:`repro.tuning.controller`.
SIM_STEP_COST = 2.0e-7


def directional_line_search(
    evaluate: Callable[[float], float],
    start: float,
    lo: float,
    hi: float,
    directions: Sequence[float] = SEARCH_DIRECTIONS,
    steps: int = SEARCH_STEPS,
) -> Tuple[float, float]:
    """The §4 one-dimensional directional search, parameter-agnostic.

    Starts at ``start`` clamped to [lo, hi], probes ``directions`` scaled
    by the step width, moves to the best improving candidate (growing the
    width 1.5x) or halves the width, for exactly ``steps`` iterations.
    The float operations are exactly those of the original (lambda,
    d_start) tuner — :func:`optimize` goes through here and stays
    bit-identical.  Returns ``(best_value, best_cost)``.
    """
    current = min(hi, max(lo, start))
    current_cost = evaluate(current)
    step_width = 1.0
    for _ in range(steps):
        candidates = []
        for direction in directions:
            value = current + step_width * direction
            if lo <= value <= hi:
                candidates.append((evaluate(value), value))
        improving = [c for c in candidates if c[0] < current_cost]
        if improving:
            current_cost, current = min(improving)
            step_width *= 1.5
        else:
            step_width *= 0.5
    return current, current_cost


@dataclass
class OptimizationResult:
    """Outcome of one tuning run."""

    params: DecayParameters
    cost: float
    baseline_cost: float
    evaluations: int
    simulated_steps: int
    tracked_queries: int


def undecayed_fraction(quanta: Sequence[int], d_start: int) -> float:
    """Fraction of tracked quanta that execute before decay begins."""
    total = sum(quanta)
    if total == 0:
        return 1.0
    undecayed = sum(min(n, d_start) for n in quanta)
    return undecayed / total


def choose_dstart_candidates(
    tracked: Sequence[TrackedQuery],
    quantum: float,
    fractions: Sequence[float] = DSTART_FRACTIONS,
) -> List[int]:
    """Minimal d_start values reaching each target undecayed fraction.

    The fraction is monotone in ``d_start``, so each candidate is found
    by binary search over [0, longest query's quantum count].
    """
    quanta = [max(1, int(round(q.work / quantum))) for q in tracked]
    if not quanta:
        return [0]
    upper = max(quanta)
    candidates: List[int] = []
    for fraction in fractions:
        lo, hi = 0, upper
        while lo < hi:
            mid = (lo + hi) // 2
            if undecayed_fraction(quanta, mid) >= fraction:
                hi = mid
            else:
                lo = mid + 1
        candidates.append(lo)
    # Deduplicate while preserving order.
    seen = set()
    unique: List[int] = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def _refine_lambda(
    tracked: Sequence[TrackedQuery],
    base_params: DecayParameters,
    d_start: int,
    lambda0: float,
    quantum: float,
    cost_fn: CostFunction = mean_slowdown_cost,
) -> Tuple[float, float, int, int]:
    """Local line search on lambda for a fixed d_start.

    Returns ``(best_lambda, best_cost, evaluations, simulated_steps)``.
    """
    evaluations = 0
    simulated_steps = 0

    def evaluate(lam: float) -> float:
        nonlocal evaluations, simulated_steps
        pairs, steps = simulate_policy_pairs(
            tracked, base_params.with_values(lam, d_start), quantum
        )
        evaluations += 1
        simulated_steps += steps
        return cost_fn(pairs)

    current_lambda, current_cost = directional_line_search(
        evaluate, lambda0, 0.0, 1.0
    )
    return current_lambda, current_cost, evaluations, simulated_steps


def optimize(
    tracked: Sequence[TrackedQuery],
    current: DecayParameters,
    quantum: float,
    cost_fn: Optional[CostFunction] = None,
) -> OptimizationResult:
    """Solve Equation 3 on the tracked workload; return the best params.

    ``cost_fn`` defaults to the paper's mean relative slowdown; pass one
    of :data:`repro.tuning.cost.COST_FUNCTIONS` for tail-focused or
    fairness-focused tuning ("other cost functions could be considered
    as well", §3.2).
    """
    cost_fn = cost_fn or mean_slowdown_cost
    if not tracked:
        return OptimizationResult(
            params=current,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            simulated_steps=0,
            tracked_queries=0,
        )
    evaluations = 0
    simulated_steps = 0
    baseline_pairs, steps = simulate_policy_pairs(tracked, current, quantum)
    baseline_cost = cost_fn(baseline_pairs)
    evaluations += 1
    simulated_steps += steps

    best_cost = baseline_cost
    best_params = current
    for d_start in choose_dstart_candidates(tracked, quantum):
        lam, cost, n_eval, n_steps = _refine_lambda(
            tracked, current, d_start, current.decay, quantum, cost_fn
        )
        evaluations += n_eval
        simulated_steps += n_steps
        if cost < best_cost:
            best_cost = cost
            best_params = current.with_values(lam, d_start)
    return OptimizationResult(
        params=best_params,
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        simulated_steps=simulated_steps,
        tracked_queries=len(tracked),
    )


#: Multivariate search directions: joint (lambda, d_start) moves.  The
#: paper tried this variant and found the heuristic d_start seeding more
#: stable; we ship it as the documented extension so the comparison can
#: be reproduced (see tests/tuning/test_optimizer.py).
MULTIVARIATE_DIRECTIONS = (
    (0.05, 0),
    (-0.05, 0),
    (0.0, 1),
    (0.0, -1),
    (0.05, 1),
    (-0.05, -1),
)


def optimize_multivariate(
    tracked: Sequence[TrackedQuery],
    current: DecayParameters,
    quantum: float,
    cost_fn: Optional[CostFunction] = None,
    search_steps: int = 2 * SEARCH_STEPS,
) -> OptimizationResult:
    """Joint directional search over (lambda, d_start).

    §4: "We also tried a multivariate directional search procedure, but
    found that choosing d_start heuristically provides more stable
    parameter choices."  This implementation lets users reproduce that
    comparison: a pattern search starting from the current parameters,
    moving in combined (lambda, d_start) directions with the same
    halve-on-fail / grow-on-success step-width schedule.
    """
    cost_fn = cost_fn or mean_slowdown_cost
    if not tracked:
        return OptimizationResult(
            params=current,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            simulated_steps=0,
            tracked_queries=0,
        )
    evaluations = 0
    simulated_steps = 0

    def evaluate(lam: float, d_start: int) -> float:
        nonlocal evaluations, simulated_steps
        pairs, steps = simulate_policy_pairs(
            tracked, current.with_values(lam, d_start), quantum
        )
        evaluations += 1
        simulated_steps += steps
        return cost_fn(pairs)

    best_lambda = min(1.0, max(0.0, current.decay))
    best_dstart = max(0, current.d_start)
    best_cost = evaluate(best_lambda, best_dstart)
    baseline_cost = best_cost
    step_width = 1.0
    max_dstart = max(
        1, max(int(round(q.work / quantum)) for q in tracked)
    )
    for _ in range(search_steps):
        candidates = []
        for d_lambda, d_dstart in MULTIVARIATE_DIRECTIONS:
            lam = best_lambda + step_width * d_lambda
            dstart = best_dstart + int(round(step_width * d_dstart))
            if 0.0 <= lam <= 1.0 and 0 <= dstart <= max_dstart:
                candidates.append((evaluate(lam, dstart), lam, dstart))
        improving = [c for c in candidates if c[0] < best_cost]
        if improving:
            best_cost, best_lambda, best_dstart = min(improving)
            step_width *= 1.5
        else:
            step_width *= 0.5
    return OptimizationResult(
        params=current.with_values(best_lambda, best_dstart),
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        simulated_steps=simulated_steps,
        tracked_queries=len(tracked),
    )


# ----------------------------------------------------------------------
# Whole-knob-space search (cost-bounded, WAter recipe)
# ----------------------------------------------------------------------

#: Pattern-search rounds of the knob-space search (each round probes
#: every knob's neighbours at the current step width).
KNOB_SEARCH_ROUNDS = 4
#: Top candidates verified on the full workload after the compressed
#: search.
KNOB_SEARCH_TOP_K = 3
#: Default compressed-workload size for candidate evaluation.
KNOB_SEARCH_COMPRESS_TO = 12
#: Full-replay probes reserved (beyond top-k verification) for the
#: final polish around the verified winner.
KNOB_SEARCH_POLISH_SLOTS = 4


@dataclass
class KnobSearchResult:
    """Outcome of one whole-knob-space tuning run."""

    #: The winning knob vector (the start vector if nothing improved).
    values: Dict[str, object]
    #: Full-workload replay cost of :attr:`values`.
    cost: float
    #: Full-workload replay cost of the start vector.
    baseline_cost: float
    #: Total replay evaluations (compressed + full).
    evaluations: int
    #: Full-workload verification replays performed.
    verified: int
    #: Simulated replay steps spent (the budget currency).
    simulated_steps: int
    #: The step budget, or ``None`` for unbounded search.
    budget_steps: Optional[int]
    #: Distinct knobs for which at least one candidate was evaluated.
    knobs_evaluated: int
    #: Compression fidelity of the evaluation workload (1.0 = full).
    fidelity: float
    compressed_queries: int
    tracked_queries: int

    @property
    def within_budget(self) -> bool:
        """Whether the spend respected the step budget."""
        return self.budget_steps is None or (
            self.simulated_steps <= self.budget_steps
        )

    @property
    def improvement(self) -> float:
        """Relative cost reduction over the start vector (0 = none)."""
        if self.baseline_cost <= 0.0:
            return 0.0
        return 1.0 - self.cost / self.baseline_cost


def _projected_replay_steps(
    total_work: float,
    n_queries: int,
    values: Mapping[str, object],
    min_quantum: Optional[float],
) -> int:
    """Upper bound on :func:`repro.tuning.replay.replay_workload` steps.

    Each step executes one quantum of work; transient retries re-run each
    affected query at most once, so executed work is at most twice the
    tracked work; final slivers add at most one step per query per run.
    Used to check affordability *before* spending, so a budgeted search
    never overshoots.
    """
    quantum = max(float(values.get("core.t_max", 0.002)), min_quantum or 0.0)
    if quantum <= 0.0:
        quantum = 0.002
    return int(2.0 * total_work / quantum) + 2 * n_queries


def search_knob_space(
    space: KnobSpace,
    tracked: Sequence[TrackedQuery],
    start: Optional[Mapping[str, object]] = None,
    cost_fn: Optional[CostFunction] = None,
    budget_seconds: Optional[float] = None,
    min_quantum: Optional[float] = None,
    compress_to: Optional[int] = KNOB_SEARCH_COMPRESS_TO,
    history: Optional[TuningHistory] = None,
    top_k: int = KNOB_SEARCH_TOP_K,
    rounds: int = KNOB_SEARCH_ROUNDS,
) -> KnobSearchResult:
    """Cost-bounded pattern search over ``space`` (the WAter recipe).

    The pipeline per tuning cycle:

    1. the tracked workload is greedily compressed to ``compress_to``
       representative queries (:mod:`repro.tuning.compress`); pass
       ``compress_to=None`` for full-replay evaluation (the reference
       mode the 5%-quality benchmark compares against);
    2. candidate vectors — single-knob neighbours of the incumbent at
       the current step width, plus the best vectors of similar past
       workloads from ``history`` — are ranked by the k-NN surrogate
       before any replay is spent on them;
    3. candidates are evaluated on the compressed workload, cheapest
       predicted first, while the step budget allows (affordability is
       checked against a conservative upper bound, so the budget is
       never overshot); the incumbent moves to the best improving
       candidate with the §4 step-width schedule (1.5x grow / 0.5x
       halve);
    4. the ``top_k`` candidates by compressed cost — plus any evaluated
       history bootstraps, which carry a known full-workload record —
       are verified on the *full* workload; only a verified improvement
       over the full-replay baseline is returned, and verified costs are
       recorded into ``history`` for future cycles.

    ``budget_seconds`` converts to a step budget at :data:`SIM_STEP_COST`
    seconds per replay step — deterministic spend accounting, no wall
    clock.  The mandatory baseline evaluation is charged even when it
    alone exceeds a very small budget; everything else is optional and
    skipped when unaffordable.
    """
    cost_fn = cost_fn or mean_slowdown_cost
    vector = dict(space.current_values())
    if start is not None:
        for name, value in start.items():
            vector[name] = space[name].domain.clamp(value)
    if not tracked:
        return KnobSearchResult(
            values=vector,
            cost=0.0,
            baseline_cost=0.0,
            evaluations=0,
            verified=0,
            simulated_steps=0,
            budget_steps=None,
            knobs_evaluated=0,
            fidelity=1.0,
            compressed_queries=0,
            tracked_queries=0,
        )

    signature = workload_signature(tracked)
    budget_steps = (
        None
        if budget_seconds is None
        else max(1, int(budget_seconds / SIM_STEP_COST))
    )
    full_work = sum(q.work for q in tracked)

    steps_used = 0
    evaluations = 0
    verified = 0

    # Mandatory full-replay baseline: the bar any candidate must beat.
    baseline_cost, steps = replay_cost(tracked, vector, min_quantum, cost_fn)
    steps_used += steps
    evaluations += 1

    # Compress the evaluation workload (WAter step 1).
    if compress_to is not None and len(tracked) > compress_to:
        compressed = compress_workload(tracked, compress_to)
        eval_queries = compressed.representatives
        fidelity = compressed.fidelity
        compression_active = True
    else:
        eval_queries = list(tracked)
        fidelity = 1.0
        compression_active = False
    eval_work = sum(q.work for q in eval_queries)

    # Reserve budget for the full-workload replays that follow the
    # compressed search — top-k verification plus the polish probes — so
    # cheap compressed evaluations cannot starve the expensive ones.
    reserve = (
        (top_k + KNOB_SEARCH_POLISH_SLOTS)
        * _projected_replay_steps(full_work, len(tracked), vector, min_quantum)
        if (budget_steps is not None and compression_active)
        else 0
    )

    def afford(projected: int, reserved: int) -> bool:
        if budget_steps is None:
            return True
        return steps_used + projected <= budget_steps - reserved

    #: Evaluated candidates as (cost, order, canonical key, vector).
    evaluated: List[Tuple[float, int, Tuple, Dict[str, object]]] = []
    seen_keys: Set[Tuple] = set()
    #: Canonical keys of evaluated history bootstraps — these carry a
    #: known-good full-workload record, so verification always revisits
    #: them even when they rank below the compressed top-k (a history-
    #: armed cycle must never do worse than the cycle that recorded it).
    bootstrap_keys: Set[Tuple] = set()
    knobs_moved: Set[str] = set()
    names = space.names()

    def key_of(values: Mapping[str, object]) -> Tuple:
        return tuple(values[name] for name in names)

    def evaluate_candidate(values: Dict[str, object]) -> Optional[float]:
        """Replay ``values`` on the evaluation workload if affordable."""
        nonlocal steps_used, evaluations
        key = key_of(values)
        if key in seen_keys:
            for cost, _, existing_key, _ in evaluated:
                if existing_key == key:
                    return cost
            return None
        projected = _projected_replay_steps(
            eval_work, len(eval_queries), values, min_quantum
        )
        if not afford(projected, reserve):
            return None
        cost, steps = replay_cost(eval_queries, values, min_quantum, cost_fn)
        steps_used += steps
        evaluations += 1
        seen_keys.add(key)
        evaluated.append((cost, len(evaluated), key, dict(values)))
        return cost

    incumbent = dict(vector)
    incumbent_cost = evaluate_candidate(incumbent)
    width = 1.0
    if incumbent_cost is not None:
        for round_index in range(rounds):
            # Candidate generation: every knob's neighbours at the
            # current width (registration order), plus — in the first
            # round — the best vectors of similar past workloads.
            candidates: List[Tuple[Tuple[str, ...], Dict[str, object]]] = []
            if round_index == 0 and history is not None:
                for bootstrap in history.best_vectors(signature, space):
                    merged = dict(incumbent)
                    changed = []
                    for name in names:
                        if name in bootstrap:
                            value = space[name].domain.clamp(bootstrap[name])
                            if value != merged[name]:
                                merged[name] = value
                                changed.append(name)
                    if changed:
                        bootstrap_keys.add(key_of(merged))
                        candidates.append((tuple(changed), merged))
            for knob in space:
                for value in knob.domain.neighbors(incumbent[knob.name], width):
                    moved = dict(incumbent)
                    moved[knob.name] = value
                    candidates.append(((knob.name,), moved))
            # Surrogate ranking (WAter step 2): spend replay on the most
            # promising candidates first.  Stable sort — ties and the
            # empty-history case preserve generation order.
            if history is not None and len(history):
                candidates.sort(
                    key=lambda item: history.predict(
                        space, signature, item[1]
                    )
                )
            best_cost = incumbent_cost
            best_values: Optional[Dict[str, object]] = None
            for changed_names, values in candidates:
                cost = evaluate_candidate(values)
                if cost is None:
                    continue
                knobs_moved.update(changed_names)
                if cost < best_cost:
                    best_cost = cost
                    best_values = values
            if best_values is not None:
                incumbent = best_values
                incumbent_cost = best_cost
                width *= 1.5
            else:
                width *= 0.5

    # Verification (WAter step 4): replay the top candidates on the full
    # workload; accept only a verified improvement over the baseline.
    best_vector = dict(vector)
    best_cost = baseline_cost
    if history is not None:
        history.record(signature, vector, baseline_cost)
    start_key = key_of(vector)
    #: Full-workload costs known so far (polish reuses them for free).
    full_costs: Dict[Tuple, float] = {start_key: baseline_cost}
    ranked = sorted(evaluated, key=lambda item: (item[0], item[1]))
    checked = 0
    for cost, _, key, values in ranked:
        is_bootstrap = key in bootstrap_keys
        if checked >= top_k and not is_bootstrap:
            continue
        if key == start_key:
            continue
        if not is_bootstrap:
            checked += 1
        if compression_active:
            projected = _projected_replay_steps(
                full_work, len(tracked), values, min_quantum
            )
            if not afford(projected, 0):
                continue
            full_cost, steps = replay_cost(
                tracked, values, min_quantum, cost_fn
            )
            steps_used += steps
            evaluations += 1
            verified += 1
        else:
            full_cost = cost
        full_costs[key] = full_cost
        if history is not None:
            history.record(signature, values, full_cost)
        if full_cost < best_cost:
            best_cost = full_cost
            best_vector = dict(values)

    # Polish (budgeted runs only): the compressed landscape's optimum
    # can sit a knob-step off the full landscape's, so leftover budget —
    # use it or lose it — buys full-replay probes of the verified
    # winner's single-knob neighbours, §4 width schedule.
    if compression_active and budget_steps is not None:
        polish_width = 1.0
        stalled = 0
        while stalled < 2:
            move: Optional[Tuple[float, Dict[str, object]]] = None
            affordable = False
            for knob in space:
                for value in knob.domain.neighbors(
                    best_vector[knob.name], polish_width
                ):
                    candidate = dict(best_vector)
                    candidate[knob.name] = value
                    key = key_of(candidate)
                    if key in full_costs:
                        full_cost = full_costs[key]
                    else:
                        projected = _projected_replay_steps(
                            full_work, len(tracked), candidate, min_quantum
                        )
                        if not afford(projected, 0):
                            continue
                        affordable = True
                        full_cost, steps = replay_cost(
                            tracked, candidate, min_quantum, cost_fn
                        )
                        steps_used += steps
                        evaluations += 1
                        verified += 1
                        full_costs[key] = full_cost
                        knobs_moved.add(knob.name)
                        if history is not None:
                            history.record(signature, candidate, full_cost)
                    if full_cost < best_cost and (
                        move is None or full_cost < move[0]
                    ):
                        move = (full_cost, candidate)
            if move is not None:
                best_cost, best_vector = move[0], dict(move[1])
                polish_width *= 1.5
                stalled = 0
            elif affordable:
                polish_width *= 0.5
                stalled += 1
            else:
                break  # the leftover budget is exhausted

    return KnobSearchResult(
        values=best_vector,
        cost=best_cost,
        baseline_cost=baseline_cost,
        evaluations=evaluations,
        verified=verified,
        simulated_steps=steps_used,
        budget_steps=budget_steps,
        knobs_evaluated=len(knobs_moved),
        fidelity=fidelity,
        compressed_queries=len(eval_queries),
        tracked_queries=len(tracked),
    )
