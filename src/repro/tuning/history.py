"""Persistent tuning history + the surrogate that prunes evaluations.

Every evaluated (workload signature, knob vector, cost) triple is worth
keeping: the next tuning cycle — or the next *server start* — faces a
similar workload, and knowing roughly how a region of the knob space
performed lets the optimizer rank candidates *before* spending replay
steps on them (WAter's "reuse tuning history to bootstrap" step;
fine-grained concurrent-query performance prediction, arXiv 2501.16256,
motivates exactly this cheap-predictor-prunes-expensive-evaluation
split).

The surrogate is deliberately tiny: a distance-weighted k-nearest-
neighbour predictor over normalized knob vectors, with the workload
signature folded into the distance so observations from a dissimilar
workload count less.  No fitting, no dependencies, fully deterministic
(ties resolve by insertion order).

Persistence is plain JSON via :meth:`TuningHistory.save` /
:meth:`TuningHistory.load`, so history survives restarts and can be
shipped between machines.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import TuningError
from repro.tuning.knobs import KnobSpace
from repro.tuning.tracker import TrackedQuery

PathLike = Union[str, Path]

#: Signature mismatch is worth this many units of (normalized) knob
#: distance — observations from a very different workload still carry
#: *some* information about the knob space's shape.
SIGNATURE_WEIGHT = 2.0
#: Distance floor in the inverse-distance weighting (an exact revisit
#: must not divide by zero).
EPSILON = 1.0e-6


def workload_signature(tracked: Sequence[TrackedQuery]) -> Tuple[float, ...]:
    """A coarse, comparable fingerprint of a tracked workload.

    Four dimensionless numbers, each roughly in [0, 1] for realistic
    workloads: log-compressed query count, log-compressed total work,
    arrival spread (mean arrival / span) and the coefficient of
    variation of per-query work (heavy-tailedness).
    """
    if not tracked:
        return (0.0, 0.0, 0.0, 0.0)
    works = [q.work for q in tracked]
    arrivals = [q.arrival_offset for q in tracked]
    total = sum(works)
    n = len(tracked)
    span = max(a + w for a, w in zip(arrivals, works))
    mean_arrival = sum(arrivals) / n
    mean_work = total / n
    variance = sum((w - mean_work) ** 2 for w in works) / n
    cv = math.sqrt(variance) / mean_work if mean_work > 0.0 else 0.0
    return (
        math.log10(1.0 + n) / 4.0,
        math.log10(1.0 + total) / 4.0,
        mean_arrival / span if span > 0.0 else 0.0,
        min(1.0, cv / 4.0),
    )


@dataclass
class HistoryEntry:
    """One observed evaluation: workload + knob vector -> cost."""

    signature: Tuple[float, ...]
    values: Dict[str, float]
    cost: float

    def as_dict(self) -> dict:
        return {
            "signature": list(self.signature),
            "values": dict(self.values),
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, raw: Mapping) -> "HistoryEntry":
        return cls(
            signature=tuple(float(x) for x in raw["signature"]),
            values=dict(raw["values"]),
            cost=float(raw["cost"]),
        )


class TuningHistory:
    """Append-only store of tuning observations with a k-NN surrogate."""

    def __init__(self, entries: Optional[List[HistoryEntry]] = None) -> None:
        self.entries: List[HistoryEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def record(
        self,
        signature: Tuple[float, ...],
        values: Mapping[str, object],
        cost: float,
    ) -> HistoryEntry:
        """Store one observation (values are snapshotted)."""
        entry = HistoryEntry(
            signature=tuple(signature),
            values={k: float(v) for k, v in values.items()},
            cost=float(cost),
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        payload = {"entries": [e.as_dict() for e in self.entries]}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "TuningHistory":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
            entries = [
                HistoryEntry.from_dict(raw)
                for raw in payload.get("entries", [])
            ]
        except (ValueError, KeyError, TypeError) as exc:
            raise TuningError(
                f"corrupt tuning history at {path}: {exc}"
            ) from exc
        return cls(entries)

    # ------------------------------------------------------------------
    # The surrogate
    # ------------------------------------------------------------------
    def _distance(
        self,
        space: KnobSpace,
        signature: Tuple[float, ...],
        values: Mapping[str, object],
        entry: HistoryEntry,
    ) -> float:
        """Knob distance plus signature mismatch (see module docstring).

        Knobs absent from an old entry (the space has since grown) are
        skipped — distance is measured over the shared knobs only.
        """
        total = 0.0
        shared = 0
        for knob in space:
            if knob.name not in entry.values or knob.name not in values:
                continue
            a = knob.domain.normalize(knob.domain.clamp(values[knob.name]))
            b = knob.domain.normalize(
                knob.domain.clamp(entry.values[knob.name])
            )
            total += abs(a - b)
            shared += 1
        knob_distance = total / shared if shared else 1.0
        sig_distance = sum(
            abs(x - y) for x, y in zip(signature, entry.signature)
        ) / max(1, len(signature))
        return knob_distance + SIGNATURE_WEIGHT * sig_distance

    def predict(
        self,
        space: KnobSpace,
        signature: Tuple[float, ...],
        values: Mapping[str, object],
        k: int = 5,
    ) -> Optional[float]:
        """Distance-weighted k-NN cost estimate, or ``None`` if empty."""
        if not self.entries:
            return None
        scored = [
            (self._distance(space, signature, values, entry), index, entry)
            for index, entry in enumerate(self.entries)
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        nearest = scored[:k]
        weight_sum = 0.0
        estimate = 0.0
        for distance, _, entry in nearest:
            weight = 1.0 / (distance + EPSILON)
            weight_sum += weight
            estimate += weight * entry.cost
        return estimate / weight_sum

    def rank(
        self,
        space: KnobSpace,
        signature: Tuple[float, ...],
        candidates: Sequence[Mapping[str, object]],
    ) -> List[Mapping[str, object]]:
        """Order ``candidates`` by predicted cost (best first).

        With an empty history the input order is preserved — the
        directional search's own ordering is already sensible.  Ties
        (identical predictions) also preserve input order, so ranking
        never introduces hash-order nondeterminism.
        """
        if not self.entries:
            return list(candidates)
        predicted = [
            (self.predict(space, signature, values), index, values)
            for index, values in enumerate(candidates)
        ]
        predicted.sort(key=lambda item: (item[0], item[1]))
        return [values for _, _, values in predicted]

    def best_vectors(
        self,
        signature: Tuple[float, ...],
        space: KnobSpace,
        limit: int = 3,
    ) -> List[Dict[str, float]]:
        """The lowest-cost historical vectors, nearest workloads first.

        Used to bootstrap the search: the best configurations of similar
        past workloads are strong opening candidates.  Sorted by
        ``(cost, signature distance, insertion order)``.
        """
        if not self.entries:
            return []
        scored = []
        for index, entry in enumerate(self.entries):
            sig_distance = sum(
                abs(x - y) for x, y in zip(signature, entry.signature)
            ) / max(1, len(signature))
            scored.append((entry.cost, sig_distance, index, entry))
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        out: List[Dict[str, float]] = []
        seen = set()
        for _, _, _, entry in scored:
            key = tuple(sorted(entry.values.items()))
            if key in seen:
                continue
            seen.add(key)
            out.append(dict(entry.values))
            if len(out) >= limit:
                break
        return out
