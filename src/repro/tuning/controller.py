"""The periodic tuning loop (§4, Figure 6).

Every ``t_r`` (refresh duration) seconds, a tracking run of ``t_t``
(tracking duration) seconds is started on one designated worker.  When
the window closes, the *same* worker stops executing tasks, runs the
parameter optimization, and pushes the new decay parameters into all
workers; the others keep executing throughout.  The optimization time is
charged to the tuning worker (it appears as a "tuning" task in the
simulation) and to the overhead accounting of Figure 10.

With a ``tuning_budget`` the controller switches from the paper's exact
(lambda, d_start) search to the cost-bounded whole-knob-space search
(:func:`repro.tuning.optimizer.search_knob_space`): the tracked workload
is compressed, candidates are ranked by the tuning-history surrogate,
and the replay spend — and therefore the tuning task's duration — is
bounded by the budget.  Without a budget the legacy path is untouched
and bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import TaskDecision
from repro.tuning.history import TuningHistory
from repro.tuning.knobs import KnobSpace, stock_knob
from repro.tuning.optimizer import (
    OptimizationResult,
    SIM_STEP_COST,
    optimize,
    search_knob_space,
)
from repro.tuning.tracker import WorkloadTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stride import StrideScheduler

#: Simulated seconds charged per self-simulation step.  Calibrated so a
#: 20 s tracking window yields the 20-100 ms optimization time of §4.
PER_STEP_COST = SIM_STEP_COST
#: Floor for the tuning task duration.
MIN_TUNING_SECONDS = 1.0e-5


@dataclass
class TuningCycleStats:
    """Per-cycle summary of one tuning run (exported by metrics)."""

    cycle: int
    #: "legacy" for the §4 (lambda, d_start) search, "knob_space" for the
    #: cost-bounded whole-knob-space search.
    mode: str
    #: The knob vector chosen this cycle (legacy cycles report the decay
    #: parameters under their stock knob names).
    values: Dict[str, object] = field(default_factory=dict)
    cost: float = 0.0
    baseline_cost: float = 0.0
    evaluations: int = 0
    verified: int = 0
    simulated_steps: int = 0
    budget_steps: Optional[int] = None
    knobs_evaluated: int = 0
    fidelity: float = 1.0
    tracked_queries: int = 0
    tuning_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat row for CSV export; knob values become ``knob:`` keys."""
        row: Dict[str, object] = {
            "cycle": self.cycle,
            "mode": self.mode,
            "cost": self.cost,
            "baseline_cost": self.baseline_cost,
            "evaluations": self.evaluations,
            "verified": self.verified,
            "simulated_steps": self.simulated_steps,
            "budget_steps": (
                "" if self.budget_steps is None else self.budget_steps
            ),
            "knobs_evaluated": self.knobs_evaluated,
            "fidelity": self.fidelity,
            "tracked_queries": self.tracked_queries,
            "tuning_seconds": self.tuning_seconds,
        }
        for name, value in self.values.items():
            row[f"knob:{name}"] = value
        return row


class TuningController:
    """Drives track -> optimize -> broadcast cycles on one worker."""

    def __init__(
        self,
        scheduler: "StrideScheduler",
        tracking_duration: float,
        refresh_duration: float,
        tracked_worker: int = 0,
        sim_quantum: Optional[float] = None,
        max_sim_steps_per_eval: int = 2000,
        objective: str = "mean",
        tuning_budget: Optional[float] = None,
        knob_space: Optional[KnobSpace] = None,
        tuning_history: Optional[TuningHistory] = None,
    ) -> None:
        if tracking_duration <= 0.0 or refresh_duration <= 0.0:
            raise ValueError("tracking and refresh durations must be positive")
        if tracking_duration > refresh_duration:
            raise ValueError("the paper requires t_t << t_r")
        self.scheduler = scheduler
        self.tracking_duration = tracking_duration
        self.refresh_duration = refresh_duration
        self.tracked_worker = tracked_worker
        #: Discretization of the self-simulation.  Defaults to the target
        #: task duration t_max (one decision per task), coarsened so a
        #: single cost evaluation stays below ``max_sim_steps_per_eval``
        #: steps — a pure-Python speed knob that preserves the policy.
        if sim_quantum is None:
            sim_quantum = max(
                scheduler.config.t_max,
                tracking_duration / max_sim_steps_per_eval,
            )
        self.sim_quantum = sim_quantum
        #: The optimization objective (§3.2: "other cost functions could
        #: be considered as well"); resolved via repro.tuning.cost.
        from repro.tuning.cost import get_cost_function

        self.objective = objective
        self._cost_fn = get_cost_function(objective)
        #: Simulated seconds one tuning cycle may spend; ``None`` keeps
        #: the paper's exact unbounded (lambda, d_start) search.
        self.tuning_budget = tuning_budget
        #: The knob space the budgeted search optimizes (built lazily
        #: from the scheduler's core knobs when not supplied).
        self._knob_space = knob_space
        #: Tuning history feeding the candidate-ranking surrogate.
        self.tuning_history = tuning_history or TuningHistory()
        self.tracker = WorkloadTracker()
        self.history: List[OptimizationResult] = []
        #: Per-cycle stats for metrics export (both tuning modes).
        self.cycles: List[TuningCycleStats] = []
        self._next_window_start = 0.0
        self._window_start = 0.0

    @property
    def knob_space(self) -> KnobSpace:
        """The knob space of the budgeted search (built on first use)."""
        if self._knob_space is None:
            self._knob_space = scheduler_knob_space(self.scheduler)
        return self._knob_space

    # ------------------------------------------------------------------
    # Hooks called by the stride scheduler
    # ------------------------------------------------------------------
    def record_task(
        self, worker_id: int, group: ResourceGroup, duration: float, now: float
    ) -> None:
        """Log an executed task if it ran on the tracked worker."""
        if worker_id == self.tracked_worker and self.tracker.active:
            self.tracker.record(group, duration)

    def maybe_tune(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        """State machine advanced at each decision of the tracked worker.

        Returns a "tuning" task decision that occupies the worker for the
        optimization time, or ``None`` when no optimization is due.
        """
        if worker_id != self.tracked_worker:
            return None
        if not self.tracker.active:
            if now >= self._next_window_start:
                self._window_start = now
                self.tracker.start(now)
            return None
        if now < self._window_start + self.tracking_duration:
            return None
        # The window closed: optimize on this worker.
        self.tracker.stop()
        self._next_window_start = self._window_start + self.refresh_duration
        tracked = self.tracker.snapshot()
        if not tracked:
            return None
        clock = getattr(self.scheduler, "clock", None)
        opt_start = clock.now() if clock is not None and clock.realtime else None
        if self.tuning_budget is not None:
            tuning_seconds = self._tune_knob_space(tracked)
        else:
            result = optimize(
                tracked,
                self.scheduler.decay_parameters,
                self.sim_quantum,
                cost_fn=self._cost_fn,
            )
            self.history.append(result)
            self.scheduler.set_decay_parameters(result.params)
            # Virtual time: model the cost from the work performed.
            tuning_seconds = max(
                MIN_TUNING_SECONDS, result.simulated_steps * PER_STEP_COST
            )
            self.cycles.append(
                TuningCycleStats(
                    cycle=len(self.cycles),
                    mode="legacy",
                    values={
                        "core.decay": result.params.decay,
                        "core.d_start": result.params.d_start,
                    },
                    cost=result.cost,
                    baseline_cost=result.baseline_cost,
                    evaluations=result.evaluations,
                    simulated_steps=result.simulated_steps,
                    knobs_evaluated=2,
                    tracked_queries=result.tracked_queries,
                    tuning_seconds=tuning_seconds,
                )
            )
        if opt_start is not None:
            # Real threads: the optimization just consumed actual wall
            # time on this worker — charge what it measurably cost.
            tuning_seconds = max(MIN_TUNING_SECONDS, clock.now() - opt_start)
            self.cycles[-1].tuning_seconds = tuning_seconds
        self.scheduler.overhead.charge_tuning(tuning_seconds)
        return TaskDecision(
            worker_id=worker_id,
            kind="tuning",
            duration=tuning_seconds,
        )

    def _tune_knob_space(self, tracked) -> float:
        """One cost-bounded whole-knob-space cycle; returns its duration."""
        space = self.knob_space
        result = search_knob_space(
            space,
            tracked,
            cost_fn=self._cost_fn,
            budget_seconds=self.tuning_budget,
            min_quantum=self.sim_quantum,
            history=self.tuning_history,
        )
        # Applying the tuned vector IS the broadcast: bound knobs push
        # through their live targets, unbound ones are skipped.
        space.apply(result.values)
        tuning_seconds = max(
            MIN_TUNING_SECONDS, result.simulated_steps * PER_STEP_COST
        )
        self.cycles.append(
            TuningCycleStats(
                cycle=len(self.cycles),
                mode="knob_space",
                values=dict(result.values),
                cost=result.cost,
                baseline_cost=result.baseline_cost,
                evaluations=result.evaluations,
                verified=result.verified,
                simulated_steps=result.simulated_steps,
                budget_steps=result.budget_steps,
                knobs_evaluated=result.knobs_evaluated,
                fidelity=result.fidelity,
                tracked_queries=result.tracked_queries,
                tuning_seconds=tuning_seconds,
            )
        )
        return tuning_seconds


def scheduler_knob_space(scheduler: "StrideScheduler") -> KnobSpace:
    """Core-layer knobs bound to a live stride scheduler.

    ``decay`` and ``d_start`` apply through the §4 parameter broadcast;
    ``t_max`` and the slot limit are read-only at this layer (they are
    construction-time in the scheduler — the server layer owns applying
    them by rebuilding backends).
    """
    space = KnobSpace()

    def apply_decay(value) -> None:
        params = scheduler.decay_parameters
        scheduler.set_decay_parameters(
            params.with_values(float(value), params.d_start)
        )

    def apply_dstart(value) -> None:
        params = scheduler.decay_parameters
        scheduler.set_decay_parameters(
            params.with_values(params.decay, int(value))
        )

    space.register(
        stock_knob(
            "core.decay",
            read=lambda: scheduler.decay_parameters.decay,
            apply=apply_decay,
        )
    )
    space.register(
        stock_knob(
            "core.d_start",
            read=lambda: scheduler.decay_parameters.d_start,
            apply=apply_dstart,
        )
    )
    space.register(
        stock_knob("core.t_max", read=lambda: scheduler.config.t_max)
    )
    space.register(
        stock_knob(
            "core.slot_limit", read=lambda: scheduler.config.slot_capacity
        )
    )
    return space
