"""The periodic tuning loop (§4, Figure 6).

Every ``t_r`` (refresh duration) seconds, a tracking run of ``t_t``
(tracking duration) seconds is started on one designated worker.  When
the window closes, the *same* worker stops executing tasks, runs the
parameter optimization, and pushes the new decay parameters into all
workers; the others keep executing throughout.  The optimization time is
charged to the tuning worker (it appears as a "tuning" task in the
simulation) and to the overhead accounting of Figure 10.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.resource_group import ResourceGroup
from repro.core.scheduler_base import TaskDecision
from repro.tuning.optimizer import OptimizationResult, optimize
from repro.tuning.tracker import WorkloadTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stride import StrideScheduler

#: Simulated seconds charged per self-simulation step.  Calibrated so a
#: 20 s tracking window yields the 20-100 ms optimization time of §4.
PER_STEP_COST = 2.0e-7
#: Floor for the tuning task duration.
MIN_TUNING_SECONDS = 1.0e-5


class TuningController:
    """Drives track -> optimize -> broadcast cycles on one worker."""

    def __init__(
        self,
        scheduler: "StrideScheduler",
        tracking_duration: float,
        refresh_duration: float,
        tracked_worker: int = 0,
        sim_quantum: Optional[float] = None,
        max_sim_steps_per_eval: int = 2000,
        objective: str = "mean",
    ) -> None:
        if tracking_duration <= 0.0 or refresh_duration <= 0.0:
            raise ValueError("tracking and refresh durations must be positive")
        if tracking_duration > refresh_duration:
            raise ValueError("the paper requires t_t << t_r")
        self.scheduler = scheduler
        self.tracking_duration = tracking_duration
        self.refresh_duration = refresh_duration
        self.tracked_worker = tracked_worker
        #: Discretization of the self-simulation.  Defaults to the target
        #: task duration t_max (one decision per task), coarsened so a
        #: single cost evaluation stays below ``max_sim_steps_per_eval``
        #: steps — a pure-Python speed knob that preserves the policy.
        if sim_quantum is None:
            sim_quantum = max(
                scheduler.config.t_max,
                tracking_duration / max_sim_steps_per_eval,
            )
        self.sim_quantum = sim_quantum
        #: The optimization objective (§3.2: "other cost functions could
        #: be considered as well"); resolved via repro.tuning.cost.
        from repro.tuning.cost import get_cost_function

        self.objective = objective
        self._cost_fn = get_cost_function(objective)
        self.tracker = WorkloadTracker()
        self.history: List[OptimizationResult] = []
        self._next_window_start = 0.0
        self._window_start = 0.0

    # ------------------------------------------------------------------
    # Hooks called by the stride scheduler
    # ------------------------------------------------------------------
    def record_task(
        self, worker_id: int, group: ResourceGroup, duration: float, now: float
    ) -> None:
        """Log an executed task if it ran on the tracked worker."""
        if worker_id == self.tracked_worker and self.tracker.active:
            self.tracker.record(group, duration)

    def maybe_tune(self, worker_id: int, now: float) -> Optional[TaskDecision]:
        """State machine advanced at each decision of the tracked worker.

        Returns a "tuning" task decision that occupies the worker for the
        optimization time, or ``None`` when no optimization is due.
        """
        if worker_id != self.tracked_worker:
            return None
        if not self.tracker.active:
            if now >= self._next_window_start:
                self._window_start = now
                self.tracker.start(now)
            return None
        if now < self._window_start + self.tracking_duration:
            return None
        # The window closed: optimize on this worker.
        self.tracker.stop()
        self._next_window_start = self._window_start + self.refresh_duration
        tracked = self.tracker.snapshot()
        if not tracked:
            return None
        clock = getattr(self.scheduler, "clock", None)
        opt_start = clock.now() if clock is not None and clock.realtime else None
        result = optimize(
            tracked,
            self.scheduler.decay_parameters,
            self.sim_quantum,
            cost_fn=self._cost_fn,
        )
        self.history.append(result)
        self.scheduler.set_decay_parameters(result.params)
        if opt_start is not None:
            # Real threads: the optimization just consumed actual wall
            # time on this worker — charge what it measurably cost.
            tuning_seconds = max(MIN_TUNING_SECONDS, clock.now() - opt_start)
        else:
            # Virtual time: model the cost from the work performed.
            tuning_seconds = max(
                MIN_TUNING_SECONDS, result.simulated_steps * PER_STEP_COST
            )
        self.scheduler.overhead.charge_tuning(tuning_seconds)
        return TaskDecision(
            worker_id=worker_id,
            kind="tuning",
            duration=tuning_seconds,
        )
