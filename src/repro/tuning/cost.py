"""Cost functions for the self-tuning optimizer.

Equation 1 of the paper defines the default objective — the mean
relative slowdown — and notes that "other cost functions could be
considered as well".  This module provides that extension point: the
self-simulation yields per-query ``(latency, base)`` pairs, and a cost
function reduces them to a single number to minimise.

Provided objectives:

* ``mean`` — the paper's Equation 1 (default);
* ``geomean`` — multiplicative fairness (less dominated by outliers);
* ``p95`` — tail-focused scheduling;
* ``max`` — worst-case slowdown.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import TuningError

#: A cost function maps per-query (latency, base_latency) pairs to a
#: scalar to minimise.
CostFunction = Callable[[Sequence[Tuple[float, float]]], float]


def _slowdowns(pairs: Sequence[Tuple[float, float]]) -> List[float]:
    return [latency / base for latency, base in pairs if base > 0.0]


def mean_slowdown_cost(pairs: Sequence[Tuple[float, float]]) -> float:
    """Equation 1: the mean relative slowdown."""
    slowdowns = _slowdowns(pairs)
    if not slowdowns:
        return 0.0
    return sum(slowdowns) / len(slowdowns)


def geomean_slowdown_cost(pairs: Sequence[Tuple[float, float]]) -> float:
    """Geometric-mean slowdown: balances improvements multiplicatively."""
    slowdowns = _slowdowns(pairs)
    if not slowdowns:
        return 0.0
    return math.exp(sum(math.log(s) for s in slowdowns) / len(slowdowns))


def p95_slowdown_cost(pairs: Sequence[Tuple[float, float]]) -> float:
    """95th-percentile slowdown: optimise the latency tail."""
    slowdowns = sorted(_slowdowns(pairs))
    if not slowdowns:
        return 0.0
    rank = 0.95 * (len(slowdowns) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(slowdowns) - 1)
    fraction = rank - lower
    return slowdowns[lower] * (1.0 - fraction) + slowdowns[upper] * fraction


def max_slowdown_cost(pairs: Sequence[Tuple[float, float]]) -> float:
    """Worst-case slowdown."""
    slowdowns = _slowdowns(pairs)
    return max(slowdowns) if slowdowns else 0.0


COST_FUNCTIONS: Dict[str, CostFunction] = {
    "mean": mean_slowdown_cost,
    "geomean": geomean_slowdown_cost,
    "p95": p95_slowdown_cost,
    "max": max_slowdown_cost,
}


def get_cost_function(name: str) -> CostFunction:
    """Look up a cost function by name."""
    try:
        return COST_FUNCTIONS[name]
    except KeyError:
        raise TuningError(
            f"unknown cost function {name!r}; choose from {sorted(COST_FUNCTIONS)}"
        ) from None
