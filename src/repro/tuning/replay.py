"""Whole-system workload replay: the knob tuner's cost model.

The §4 self-simulation (:mod:`repro.tuning.self_sim`) replays the
tracked workload under candidate *decay* parameters only.  This module
generalizes it into a parameterized replay that responds to the whole
knob surface of :mod:`repro.tuning.knobs` — the same discretized
single-worker loop, extended with the mechanisms the knobs control:

* ``core.decay`` / ``core.d_start`` — priority decay, exactly as in the
  legacy self-simulation;
* ``core.t_max`` — the scheduling quantum.  Every decision costs a fixed
  scheduling overhead on top of the useful work, so a smaller quantum
  interleaves short queries better but burns more time on decisions —
  the trade-off §2.2 describes;
* ``core.slot_limit`` — at most this many queries hold slots; the rest
  wait in the §2.3 admission queue (FIFO);
* ``admission.max_pending`` — arrivals beyond this bound are shed and
  charged the shedding penalty slowdown;
* ``runtime.channel_capacity`` — a query producing more chunks than the
  channel holds stalls on its consumer; larger channels stall less but
  pay a per-query buffer-touch cost;
* ``runtime.retry_budget`` / ``runtime.retry_backoff`` — a deterministic
  subset of queries fails transiently once; with budget left the query
  re-runs after its backoff, otherwise it is charged the failure
  penalty.

The model is deliberately simple — it is a *cost model*, not a second
simulator — but every term is monotone in the mechanism it stands for,
each knob has a genuine optimum under load, and the whole computation is
pure deterministic arithmetic (no wall clock, no hash order, no RNG), so
tuning decisions are bit-reproducible across processes and hash seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.worker import STRIDE_SCALE
from repro.tuning.cost import CostFunction, mean_slowdown_cost
from repro.tuning.tracker import TrackedQuery

#: Scheduling overhead charged per decision (seconds).  Calibrated so
#: t_max = 2 ms spends ~2% of its time deciding, matching the overhead
#: accounting of Figure 10.
DECISION_OVERHEAD_SECONDS = 4.0e-5
#: Useful work per result chunk (seconds) — sets how many chunks a query
#: of a given size produces.
CHUNK_WORK_SECONDS = 0.01
#: Consumer-lag stall per chunk beyond the channel capacity (seconds).
CHANNEL_STALL_SECONDS = 2.0e-3
#: Per-query cost of touching one channel buffer slot (seconds); makes
#: "infinite channels" non-free so the capacity knob has an optimum.
BUFFER_TOUCH_SECONDS = 5.0e-5
#: Fraction of queries that fail transiently once (deterministic subset).
FAILURE_HAZARD = 0.05
#: Slowdown charged to a shed query (it did not run at all).
SHED_SLOWDOWN = 50.0
#: Slowdown charged to a query that failed with no retry budget left.
FAILURE_SLOWDOWN = 25.0

#: Knuth's multiplicative hash constant: spreads group ids over the
#: failure lottery without any RNG state.
_HASH_MULT = 2654435761
_HASH_MOD = 1000


def _fails_transiently(group_id: int) -> bool:
    """Deterministic per-query transient-failure lottery."""
    return (group_id * _HASH_MULT) % _HASH_MOD < FAILURE_HAZARD * _HASH_MOD


@dataclass
class ReplayResult:
    """Outcome of replaying a tracked workload under one knob vector."""

    #: Per-query ``(latency, base_latency)`` pairs (shed/failed queries
    #: carry their penalty latencies).
    pairs: List[Tuple[float, float]]
    #: Simulated scheduling decisions (the evaluation's cost currency).
    steps: int
    shed: int = 0
    retried: int = 0
    failed: int = 0


def replay_workload(
    tracked: Sequence[TrackedQuery],
    values: Mapping[str, object],
    min_quantum: Optional[float] = None,
) -> ReplayResult:
    """Replay ``tracked`` under the knob vector ``values``.

    ``min_quantum`` coarsens the discretization (the controller's
    step-budget lever): the effective quantum is
    ``max(core.t_max, min_quantum)``.  Unknown knob names are ignored —
    the replay reads only the knobs it models — so richer spaces degrade
    gracefully.
    """
    if not tracked:
        return ReplayResult(pairs=[], steps=0)

    decay = float(values.get("core.decay", 0.9))
    d_start = int(values.get("core.d_start", 7))
    t_max = float(values.get("core.t_max", 0.002))
    slot_limit = int(values.get("core.slot_limit", 128))
    channel_capacity = int(values.get("runtime.channel_capacity", 8))
    retry_budget = int(values.get("runtime.retry_budget", 16))
    retry_backoff = float(values.get("runtime.retry_backoff", 0.05))
    max_pending = int(values.get("admission.max_pending", 4096))

    quantum = max(t_max, min_quantum or 0.0)
    p0 = 10_000.0
    p_min = 100.0

    queries = sorted(tracked, key=lambda q: (q.arrival_offset, q.group_id))
    n_queries = len(queries)

    remaining: List[float] = [q.work for q in queries]
    arrival: List[float] = [q.arrival_offset for q in queries]
    pass_value: List[float] = [0.0] * n_queries
    quanta_done: List[int] = [0] * n_queries
    priority: List[float] = [p0] * n_queries
    #: Whether this query's one transient failure is still pending.
    will_fail: List[bool] = [
        _fails_transiently(q.group_id) for q in queries
    ]

    active: List[int] = []   # holding a slot
    waiting: List[int] = []  # admitted, queueing for a slot (FIFO)
    #: Retried queries parked until their backoff elapses, as
    #: (ready_time, index) in ready order.
    parked: List[Tuple[float, int]] = []
    next_arrival_index = 0
    time = 0.0
    global_pass = 0.0
    pairs: List[Tuple[float, float]] = []
    finished = 0
    steps = 0
    shed = 0
    retried = 0
    failed = 0

    def in_system() -> int:
        return len(active) + len(waiting) + len(parked)

    def finish(index: int, latency: float) -> None:
        nonlocal finished
        finished += 1
        base = queries[index].work
        # Channel effects: stalls beyond capacity plus the buffer touch.
        chunks = max(1, int(base / CHUNK_WORK_SECONDS) + 1)
        stall = max(0, chunks - channel_capacity) * CHANNEL_STALL_SECONDS
        latency += stall + channel_capacity * BUFFER_TOUCH_SECONDS
        pairs.append((latency, base))

    while finished < n_queries:
        # Admit everything that has arrived by now.
        while (
            next_arrival_index < n_queries
            and arrival[next_arrival_index] <= time
        ):
            index = next_arrival_index
            next_arrival_index += 1
            if remaining[index] <= 0.0:
                finished += 1
                continue
            if in_system() >= max_pending:
                # Overloaded: shed the newcomer at the admission edge.
                shed += 1
                failed += 1
                finished += 1
                base = queries[index].work
                pairs.append((SHED_SLOWDOWN * base, base))
                continue
            pass_value[index] = global_pass
            if len(active) < slot_limit:
                active.append(index)
            else:
                waiting.append(index)
        # Wake parked retries whose backoff elapsed.
        while parked and parked[0][0] <= time:
            _, index = parked.pop(0)
            pass_value[index] = global_pass
            if len(active) < slot_limit:
                active.append(index)
            else:
                waiting.append(index)
        # Promote waiting queries into free slots (FIFO).
        while waiting and len(active) < slot_limit:
            active.append(waiting.pop(0))
        if not active:
            # Idle until the next arrival or parked wake-up.
            horizons = []
            if next_arrival_index < n_queries:
                horizons.append(arrival[next_arrival_index])
            if parked:
                horizons.append(parked[0][0])
            if not horizons:
                break  # defensive: nothing left to run
            time = min(horizons)
            continue
        # Pick the active query with minimal pass (stride scheduling).
        best = active[0]
        best_pass = pass_value[best]
        for index in active[1:]:
            if pass_value[index] < best_pass:
                best_pass = pass_value[index]
                best = index
        # Execute one quantum (or the final sliver of work).
        work = remaining[best]
        slice_seconds = quantum if work > quantum else work
        fraction = slice_seconds / quantum
        time += slice_seconds + DECISION_OVERHEAD_SECONDS
        steps += 1
        remaining[best] = work - slice_seconds
        # Stride pass updates (§2.1, non-preemptive fractional form).
        stride = STRIDE_SCALE / priority[best]
        pass_value[best] += fraction * stride
        total_priority = 0.0
        for index in active:
            total_priority += priority[index]
        global_pass += fraction * STRIDE_SCALE / total_priority
        # Priority decay after each completed quantum (§3.2).
        quanta_done[best] += 1
        if quanta_done[best] > d_start:
            decayed = decay * priority[best]
            priority[best] = decayed if decayed > p_min else p_min
        if remaining[best] <= 0.0:
            active.remove(best)
            if will_fail[best]:
                will_fail[best] = False
                if retry_budget > 0:
                    # Transient failure, budget left: re-run after the
                    # backoff; priority state persists (§4 closed form).
                    retry_budget -= 1
                    retried += 1
                    remaining[best] = queries[best].work
                    parked.append((time + retry_backoff, best))
                    parked.sort()
                else:
                    failed += 1
                    base = queries[best].work
                    finish(best, FAILURE_SLOWDOWN * base)
            else:
                finish(best, time - arrival[best])
    return ReplayResult(
        pairs=pairs, steps=steps, shed=shed, retried=retried, failed=failed
    )


def replay_cost(
    tracked: Sequence[TrackedQuery],
    values: Mapping[str, object],
    min_quantum: Optional[float] = None,
    cost_fn: Optional[CostFunction] = None,
) -> Tuple[float, int]:
    """Replay and reduce to ``(cost, steps)`` with ``cost_fn``."""
    cost_fn = cost_fn or mean_slowdown_cost
    result = replay_workload(tracked, values, min_quantum)
    return cost_fn(result.pairs), result.steps
