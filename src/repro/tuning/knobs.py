"""Declarative knob registry: the tunable surface of the whole system.

The paper's §4 tuner optimizes exactly two parameters, ``(lambda,
d_start)``.  The system has since grown many more hand-set constants —
scheduler slot counts, morsel-growth constants, channel capacities,
retry budgets, admission bounds, placement coefficients.  This module
turns them into *data*: a :class:`Knob` describes one tunable (its
domain, the layer it lives in, and how to read/apply it on a live
target), and a :class:`KnobSpace` is an ordered registry of knobs that
any search procedure can optimize over
(:func:`repro.tuning.optimizer.search_knob_space`).

Layers mirror the system's architecture:

* ``core`` — the scheduler itself: priority decay ``(lambda, d_start)``,
  the target task duration ``t_max``, morsel-growth constants;
* ``runtime`` — the execution backends: result-channel capacity, the
  server-wide retry budget and backoff;
* ``admission`` — the admission policy: queue depth (``max_pending``),
  per-tenant quota defaults;
* ``cluster`` — the router: predictive-placement EMA ``alpha`` and the
  work-sharing affinity ``gamma``.

A knob binds to its live target through ``read``/``apply`` callables, so
applying a tuned vector *is* the broadcast: core knobs push through the
scheduler's §4 parameter broadcast, runtime knobs mutate the backend,
admission knobs mutate the policy, cluster knobs mutate the placement
policy.  Everything is deterministic: knobs iterate in registration
order, and domains generate candidate neighbours in a fixed order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import TuningError

#: The architectural layers a knob may belong to.
LAYERS = ("core", "runtime", "admission", "cluster")


class Domain(abc.ABC):
    """The set of values a knob may take, plus search geometry."""

    @abc.abstractmethod
    def clamp(self, value):
        """Project ``value`` onto the domain."""

    @abc.abstractmethod
    def validate(self, value) -> None:
        """Raise :class:`TuningError` if ``value`` is outside the domain."""

    @abc.abstractmethod
    def neighbors(self, value, width: float) -> List:
        """Candidate moves from ``value`` at step-width ``width``.

        Returned in a fixed (+ then −) order so directional searches are
        deterministic; values equal to ``value`` after clamping are
        dropped.
        """

    @abc.abstractmethod
    def normalize(self, value) -> float:
        """Map ``value`` into [0, 1] for surrogate distance metrics."""

    @abc.abstractmethod
    def sample(self, fraction: float):
        """The domain value at normalized position ``fraction`` ∈ [0, 1]."""


@dataclass(frozen=True)
class ContinuousDomain(Domain):
    """A closed real interval with a directional-search base step."""

    lo: float
    hi: float
    #: The step a directional search takes at width 1.0.
    step: float

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise TuningError(f"empty domain [{self.lo}, {self.hi}]")
        if self.step <= 0.0:
            raise TuningError("domain step must be positive")

    def clamp(self, value):
        return min(self.hi, max(self.lo, float(value)))

    def validate(self, value) -> None:
        if not self.lo <= value <= self.hi:
            raise TuningError(
                f"value {value!r} outside domain [{self.lo}, {self.hi}]"
            )

    def neighbors(self, value, width: float) -> List:
        out = []
        for direction in (1.0, -1.0):
            candidate = self.clamp(value + direction * width * self.step)
            if candidate != value and candidate not in out:
                out.append(candidate)
        return out

    def normalize(self, value) -> float:
        return (float(value) - self.lo) / (self.hi - self.lo)

    def sample(self, fraction: float):
        return self.clamp(self.lo + fraction * (self.hi - self.lo))


@dataclass(frozen=True)
class IntegerDomain(Domain):
    """A closed integer interval with an integer base step."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise TuningError(f"empty domain [{self.lo}, {self.hi}]")
        if self.step < 1:
            raise TuningError("integer domain step must be >= 1")

    def clamp(self, value):
        return min(self.hi, max(self.lo, int(round(value))))

    def validate(self, value) -> None:
        if value != int(value) or not self.lo <= value <= self.hi:
            raise TuningError(
                f"value {value!r} outside integer domain "
                f"[{self.lo}, {self.hi}]"
            )

    def neighbors(self, value, width: float) -> List:
        delta = max(self.step, int(round(width * self.step)))
        out = []
        for direction in (1, -1):
            candidate = self.clamp(value + direction * delta)
            if candidate != value and candidate not in out:
                out.append(candidate)
        return out

    def normalize(self, value) -> float:
        return (int(value) - self.lo) / (self.hi - self.lo)

    def sample(self, fraction: float):
        return self.clamp(self.lo + fraction * (self.hi - self.lo))


@dataclass(frozen=True)
class ChoiceDomain(Domain):
    """A small ordered set of admissible values."""

    values: Tuple

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise TuningError("a choice domain needs at least two values")

    def _index(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise TuningError(
                f"value {value!r} not in choices {self.values}"
            ) from None

    def clamp(self, value):
        if value in self.values:
            return value
        # Nearest choice for numeric values; first choice otherwise.
        try:
            return min(self.values, key=lambda v: abs(v - value))
        except TypeError:
            return self.values[0]

    def validate(self, value) -> None:
        self._index(value)

    def neighbors(self, value, width: float) -> List:
        index = self._index(value)
        out = []
        for direction in (1, -1):
            j = index + direction
            if 0 <= j < len(self.values):
                out.append(self.values[j])
        return out

    def normalize(self, value) -> float:
        return self._index(value) / (len(self.values) - 1)

    def sample(self, fraction: float):
        index = int(round(fraction * (len(self.values) - 1)))
        return self.values[max(0, min(len(self.values) - 1, index))]


@dataclass
class Knob:
    """One tunable system parameter bound to a live target.

    ``read``/``apply`` close over the owning object (a scheduler, a
    backend, a policy).  Unbound knobs (``read``/``apply`` = ``None``)
    are still searchable — the replay cost model sees their values — but
    :meth:`KnobSpace.apply` skips them.
    """

    name: str
    layer: str
    domain: Domain
    default: object
    description: str = ""
    read: Optional[Callable[[], object]] = None
    apply: Optional[Callable[[object], None]] = None

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise TuningError(
                f"knob {self.name!r}: unknown layer {self.layer!r}; "
                f"choose from {LAYERS}"
            )
        self.domain.validate(self.domain.clamp(self.default))

    def current(self):
        """The live value (falls back to the default when unbound)."""
        if self.read is None:
            return self.default
        return self.domain.clamp(self.read())


class KnobSpace:
    """An ordered registry of knobs; the search space of the tuner.

    Registration order is the canonical knob order everywhere (vectors,
    neighbours, normalization), so results never depend on dict or set
    iteration order — the same discipline the rest of the system follows
    for hash-seed determinism.
    """

    def __init__(self, knobs: Optional[List[Knob]] = None) -> None:
        self._knobs: Dict[str, Knob] = {}
        for knob in knobs or []:
            self.register(knob)

    def register(self, knob: Knob) -> Knob:
        if knob.name in self._knobs:
            raise TuningError(f"knob {knob.name!r} already registered")
        self._knobs[knob.name] = knob
        return knob

    def extend(self, other: "KnobSpace", prefix: str = "") -> None:
        """Merge another space's knobs (optionally name-prefixed)."""
        for knob in other:
            merged = Knob(
                name=prefix + knob.name,
                layer=knob.layer,
                domain=knob.domain,
                default=knob.default,
                description=knob.description,
                read=knob.read,
                apply=knob.apply,
            )
            self.register(merged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Knob]:
        return iter(self._knobs.values())

    def __len__(self) -> int:
        return len(self._knobs)

    def __contains__(self, name: str) -> bool:
        return name in self._knobs

    def __getitem__(self, name: str) -> Knob:
        try:
            return self._knobs[name]
        except KeyError:
            raise TuningError(
                f"unknown knob {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._knobs)

    def layer(self, layer: str) -> List[Knob]:
        """The knobs registered for one architectural layer."""
        return [k for k in self if k.layer == layer]

    # ------------------------------------------------------------------
    # Vectors
    # ------------------------------------------------------------------
    def current_values(self) -> Dict[str, object]:
        """Read the live value of every knob, in registration order."""
        return {knob.name: knob.current() for knob in self}

    def defaults(self) -> Dict[str, object]:
        return {knob.name: knob.default for knob in self}

    def validate(self, values: Mapping[str, object]) -> None:
        for name, value in values.items():
            self[name].domain.validate(value)

    def clamp(self, values: Mapping[str, object]) -> Dict[str, object]:
        return {
            name: self[name].domain.clamp(value)
            for name, value in values.items()
        }

    def apply(self, values: Mapping[str, object]) -> List[str]:
        """Push ``values`` into the live system; returns applied names.

        Knobs without an ``apply`` hook are skipped (their values only
        exist inside the cost model); unknown names raise.
        """
        applied = []
        for knob in self:
            if knob.name not in values:
                continue
            value = knob.domain.clamp(values[knob.name])
            if knob.apply is not None:
                knob.apply(value)
                applied.append(knob.name)
        unknown = [name for name in values if name not in self._knobs]
        if unknown:
            raise TuningError(f"unknown knobs in vector: {unknown}")
        return applied

    def neighbors(
        self, values: Mapping[str, object], width: float
    ) -> List[Dict[str, object]]:
        """Single-knob moves from ``values``, in registration order."""
        out = []
        for knob in self:
            base = values[knob.name]
            for candidate in knob.domain.neighbors(base, width):
                moved = dict(values)
                moved[knob.name] = candidate
                out.append(moved)
        return out

    def normalize(self, values: Mapping[str, object]) -> Tuple[float, ...]:
        """The vector mapped into the unit cube (surrogate distance)."""
        return tuple(
            knob.domain.normalize(
                knob.domain.clamp(values[knob.name])
            )
            for knob in self
        )

    def distance(
        self, a: Mapping[str, object], b: Mapping[str, object]
    ) -> float:
        """Normalized L1 distance between two vectors (mean per knob)."""
        na, nb = self.normalize(a), self.normalize(b)
        return sum(abs(x - y) for x, y in zip(na, nb)) / max(1, len(na))


# ----------------------------------------------------------------------
# Stock knob descriptors for the replay cost model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Stock:
    """Name + layer + domain + default for one well-known knob."""

    name: str
    layer: str
    domain: Domain
    default: object
    description: str


#: The well-known knobs of the whole system, in canonical order.  These
#: are the names the replay cost model (:mod:`repro.tuning.replay`)
#: understands; binding functions attach live read/apply hooks to them.
STOCK_KNOBS: Tuple[_Stock, ...] = (
    _Stock(
        "core.decay",
        "core",
        ContinuousDomain(0.0, 1.0, step=0.05),
        0.9,
        "priority-decay factor lambda (§3.2)",
    ),
    _Stock(
        "core.d_start",
        "core",
        IntegerDomain(0, 512),
        7,
        "quanta at full priority before decay begins (§3.2)",
    ),
    _Stock(
        "core.t_max",
        "core",
        ContinuousDomain(0.0005, 0.016, step=0.0005),
        0.002,
        "target task duration / decay quantum (§2.2)",
    ),
    _Stock(
        "core.slot_limit",
        "core",
        IntegerDomain(2, 256, step=2),
        128,
        "scheduler slot capacity: concurrently active queries (§2.3)",
    ),
    _Stock(
        "runtime.channel_capacity",
        "runtime",
        IntegerDomain(1, 128),
        8,
        "bounded result-channel depth in chunks",
    ),
    _Stock(
        "runtime.retry_budget",
        "runtime",
        IntegerDomain(0, 64),
        16,
        "server-wide transient-failure resubmission budget",
    ),
    _Stock(
        "runtime.retry_backoff",
        "runtime",
        ContinuousDomain(0.0, 1.0, step=0.01),
        0.05,
        "base exponential backoff between retry attempts (seconds)",
    ),
    _Stock(
        "admission.max_pending",
        "admission",
        IntegerDomain(4, 4096, step=4),
        256,
        "admission queue depth: pending queries before backpressure",
    ),
    _Stock(
        "cluster.placement_alpha",
        "cluster",
        ContinuousDomain(0.05, 1.0, step=0.05),
        0.3,
        "predictive-placement work-estimate EMA step",
    ),
    _Stock(
        "cluster.sharing_affinity",
        "cluster",
        ContinuousDomain(0.0, 0.95, step=0.05),
        0.5,
        "placement discount for shards already running a fragment",
    ),
)

_STOCK_BY_NAME = {stock.name: stock for stock in STOCK_KNOBS}


def stock_knob(
    name: str,
    read: Optional[Callable[[], object]] = None,
    apply: Optional[Callable[[object], None]] = None,
    default: Optional[object] = None,
) -> Knob:
    """Instantiate a well-known knob, optionally bound to a live target."""
    stock = _STOCK_BY_NAME.get(name)
    if stock is None:
        raise TuningError(
            f"unknown stock knob {name!r}; known: "
            f"{tuple(_STOCK_BY_NAME)}"
        )
    return Knob(
        name=stock.name,
        layer=stock.layer,
        domain=stock.domain,
        default=stock.default if default is None else default,
        description=stock.description,
        read=read,
        apply=apply,
    )


def default_knob_space(names: Optional[Tuple[str, ...]] = None) -> KnobSpace:
    """An unbound space over the stock knobs (cost-model-only tuning)."""
    space = KnobSpace()
    for stock in STOCK_KNOBS:
        if names is not None and stock.name not in names:
            continue
        space.register(stock_knob(stock.name))
    return space
