"""Lightweight workload tracking on a single worker (§4, Figure 6).

Because the workload is symmetric across worker threads, tracking a
single worker suffices — this is what makes tuning cheap on highly
parallel machines (Figure 10: the relative tuning overhead *drops* as
cores are added).  The tracker "only logs the execution time spent on
each of the active resource groups": per resource group we accumulate
the CPU time this worker spent on it, plus the group's arrival offset
within the tracking window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.resource_group import ResourceGroup


@dataclass
class TrackedQuery:
    """One resource group as observed during a tracking window."""

    group_id: int
    name: str
    scale_factor: float
    #: Arrival relative to the window start (0 for pre-existing groups).
    arrival_offset: float
    #: CPU seconds the tracked worker spent on this group.
    work: float

    @property
    def base_latency(self) -> float:
        """The group's latency if it ran alone on the tracked worker.

        The tracked work itself serves as the baseline of the reduced
        single-worker scheduling problem the optimizer solves.
        """
        return self.work


class WorkloadTracker:
    """Accumulates per-resource-group execution time on one worker."""

    def __init__(self) -> None:
        self._window_start = 0.0
        self._entries: Dict[int, TrackedQuery] = {}
        self.active = False

    @property
    def window_start(self) -> float:
        """Virtual time at which the current window began."""
        return self._window_start

    def start(self, now: float) -> None:
        """Begin a fresh tracking window at ``now``."""
        self._window_start = now
        self._entries = {}
        self.active = True

    def stop(self) -> None:
        """End the window; the collected snapshot stays readable."""
        self.active = False

    def record(self, group: ResourceGroup, duration: float) -> None:
        """Log ``duration`` seconds of work on ``group``."""
        if not self.active or duration <= 0.0:
            return
        entry = self._entries.get(group.query_id)
        if entry is None:
            entry = TrackedQuery(
                group_id=group.query_id,
                name=group.query.name,
                scale_factor=group.query.scale_factor,
                arrival_offset=max(0.0, group.arrival_time - self._window_start),
                work=0.0,
            )
            self._entries[group.query_id] = entry
        entry.work += duration

    def snapshot(self) -> List[TrackedQuery]:
        """The tracked queries, ordered by arrival offset."""
        return sorted(self._entries.values(), key=lambda e: (e.arrival_offset, e.group_id))

    def __len__(self) -> int:
        return len(self._entries)
