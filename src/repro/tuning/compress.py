"""Greedy workload compression for cost-bounded tuning (WAter recipe).

Evaluating one candidate knob vector costs a full replay of the tracked
workload; whole-knob-space tuning needs tens of evaluations per cycle.
Following WAter's recipe, candidates are evaluated on a greedily
*compressed* representative workload instead, and only the top
configurations are verified on the full workload.

Compression merges queries that arrive close together into one longer
representative query carrying their combined work, so the **total load
and its timing are preserved** — congestion, the thing slowdown-based
cost functions measure, stays honest.  The greedy loop always merges the
adjacent-in-arrival cluster pair with the smallest *displacement
penalty* (work-weighted arrival shift plus lost per-query resolution),
so cheap merges happen first and the damage of reaching the target size
is minimal.

The :attr:`CompressedWorkload.fidelity` metric summarises that damage on
a [0, 1] scale (1.0 = no compression, exact costs by construction).  The
cost-estimate error of the compressed replay is empirically bounded by
``(1 - fidelity) * FIDELITY_ERROR_FACTOR`` relative to the full-replay
cost — the property that tests/tuning/test_compress.py checks on random
workloads, and the contract the optimizer's verification step relies on
when it decides how many top candidates need a full-workload replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import TuningError
from repro.tuning.replay import _fails_transiently
from repro.tuning.tracker import TrackedQuery

#: Empirical bound factor: |cost_compressed - cost_full| is at most
#: ``(1 - fidelity) * FIDELITY_ERROR_FACTOR * cost_full`` on the
#: workloads the property test sweeps.  Deliberately loose — fidelity is
#: a planning signal (how much verification the optimizer must buy),
#: not a proof.
FIDELITY_ERROR_FACTOR = 6.0

#: Weight of the retry-mass distortion term: merging changes which work
#: passes the replay's deterministic transient-failure lottery (keyed by
#: the merged cluster's group id), and a retried query re-runs its whole
#: work — so a shift of failing mass distorts the replay about as much
#: as the same mass of displaced work.
RETRY_DISTORTION_WEIGHT = 1.0


@dataclass
class _Cluster:
    """Aggregate statistics of one merged group of tracked queries.

    Kept as closed-form sums so a candidate merge's penalty is O(1):
    ``work`` = Σ w_m, ``work_arrival`` = Σ w_m·a_m, ``work_sq`` = Σ w_m²
    over the members ``m``.
    """

    arrival: float       # min member arrival (the merged arrival)
    work: float          # Σ member work (the merged work)
    work_arrival: float  # Σ work·arrival over members
    work_sq: float       # Σ work² over members
    count: int
    group_id: int        # min member group id (determinism anchor)
    name: str            # name of the largest-work member
    name_work: float     # that member's work
    scale_factor: float
    fail_work: float     # Σ work over members failing the replay lottery

    def displacement(self, span: float, mean_work: float) -> float:
        """Distortion of this cluster's members, in work units.

        Four terms, all zero for singleton clusters:

        * arrival shift — members run from the cluster's (earliest)
          arrival instead of their own: Σ w·(a − a_C) / span;
        * resolution loss — members dissolve into one base latency:
          0.5 · Σ w·(1 − w / W_C);
        * sample loss — count-weighted cost functions (mean slowdown)
          lose one sample per absorbed member, each worth one average
          query's work: (count − 1) · w̄;
        * retry mismatch — the merged cluster's group id decides the
          whole cluster's transient-failure lottery, so the failing work
          mass shifts by |Σ w_fail − W_C·[C fails]|.
        """
        if self.count == 1:
            return 0.0
        time_term = (
            (self.work_arrival - self.arrival * self.work) / span
            if span > 0.0
            else 0.0
        )
        mass_term = 0.5 * (self.work - self.work_sq / self.work)
        sample_term = (self.count - 1) * mean_work
        merged_fail = self.work if _fails_transiently(self.group_id) else 0.0
        retry_term = RETRY_DISTORTION_WEIGHT * abs(
            self.fail_work - merged_fail
        )
        return time_term + mass_term + sample_term + retry_term


def _merge(a: _Cluster, b: _Cluster) -> _Cluster:
    name, name_work = (
        (a.name, a.name_work)
        if a.name_work >= b.name_work
        else (b.name, b.name_work)
    )
    return _Cluster(
        arrival=min(a.arrival, b.arrival),
        work=a.work + b.work,
        work_arrival=a.work_arrival + b.work_arrival,
        work_sq=a.work_sq + b.work_sq,
        count=a.count + b.count,
        group_id=min(a.group_id, b.group_id),
        name=name,
        name_work=name_work,
        scale_factor=a.scale_factor if a.name_work >= b.name_work else b.scale_factor,
        fail_work=a.fail_work + b.fail_work,
    )


@dataclass
class CompressedWorkload:
    """A representative subset standing in for the full tracked workload."""

    representatives: List[TrackedQuery]
    #: Distortion summary in [0, 1]; 1.0 means no compression happened.
    fidelity: float
    original_queries: int

    @property
    def ratio(self) -> float:
        """Compression ratio (representatives / original queries)."""
        if self.original_queries == 0:
            return 1.0
        return len(self.representatives) / self.original_queries

    def error_bound(self, full_cost: float) -> float:
        """Empirical bound on |compressed cost − ``full_cost``|."""
        return (1.0 - self.fidelity) * FIDELITY_ERROR_FACTOR * full_cost


def compress_workload(
    tracked: Sequence[TrackedQuery], max_queries: int
) -> CompressedWorkload:
    """Greedily merge ``tracked`` down to ≤ ``max_queries`` queries.

    Only adjacent-in-arrival clusters merge (congestion is a local-in-
    time phenomenon; merging across the timeline would move load), and
    at each step the pair with the smallest displacement-penalty
    increase is merged.  Deterministic: input is sorted by
    ``(arrival_offset, group_id)`` and ties in the penalty scan resolve
    to the earliest pair.
    """
    if max_queries < 1:
        raise TuningError("max_queries must be at least 1")
    queries = sorted(tracked, key=lambda q: (q.arrival_offset, q.group_id))
    if not queries:
        return CompressedWorkload([], 1.0, 0)
    total_work = sum(q.work for q in queries)
    span = max(q.arrival_offset + q.work for q in queries)
    clusters: List[_Cluster] = [
        _Cluster(
            arrival=q.arrival_offset,
            work=q.work,
            work_arrival=q.work * q.arrival_offset,
            work_sq=q.work * q.work,
            count=1,
            group_id=q.group_id,
            name=q.name,
            name_work=q.work,
            scale_factor=q.scale_factor,
            fail_work=q.work if _fails_transiently(q.group_id) else 0.0,
        )
        for q in queries
    ]
    mean_work = total_work / len(queries)
    while len(clusters) > max_queries:
        best_index = 0
        best_penalty = float("inf")
        for i in range(len(clusters) - 1):
            a, b = clusters[i], clusters[i + 1]
            merged = _merge(a, b)
            penalty = (
                merged.displacement(span, mean_work)
                - a.displacement(span, mean_work)
                - b.displacement(span, mean_work)
            )
            if penalty < best_penalty:
                best_penalty = penalty
                best_index = i
        clusters[best_index : best_index + 2] = [
            _merge(clusters[best_index], clusters[best_index + 1])
        ]
    displacement = sum(c.displacement(span, mean_work) for c in clusters)
    fidelity = (
        max(0.0, 1.0 - displacement / total_work) if total_work > 0.0 else 1.0
    )
    representatives = [
        TrackedQuery(
            group_id=c.group_id,
            name=c.name,
            scale_factor=c.scale_factor,
            arrival_offset=c.arrival,
            work=c.work,
        )
        for c in clusters
    ]
    return CompressedWorkload(
        representatives=representatives,
        fidelity=fidelity,
        original_queries=len(queries),
    )
