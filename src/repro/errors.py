"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.

Errors carry a ``transient`` class attribute used by the retry machinery
in :class:`~repro.server.AnalyticsServer`: transient failures (injected
faults, dead workers) are safe to re-execute, permanent ones (a malformed
plan, a missed deadline, an admission rejection) are not.
"""

__all__ = [
    "ReproError",
    "SchedulerError",
    "SlotError",
    "SimulationError",
    "AdmissionError",
    "TenantQuotaError",
    "QueryCancelledError",
    "QueryFailedError",
    "QueryTimeoutError",
    "ChannelClosedError",
    "UnknownTicketError",
    "WorkerFailedError",
    "WorkerDiedError",
    "InjectedFault",
    "EngineError",
    "PlanError",
    "WorkloadError",
    "CalibrationError",
    "TuningError",
    "error_from_text",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    #: Whether re-executing the failed query may plausibly succeed.
    #: Consulted by the server's retry machinery; see the module docstring.
    transient = False


class SchedulerError(ReproError):
    """Raised when a scheduler is driven through an invalid transition.

    Examples include admitting a resource group twice, finalizing a task
    set that still has pinned workers, or stepping a worker that does not
    belong to the scheduler.
    """


class SlotError(SchedulerError):
    """Raised on invalid global-slot-array operations (e.g. double install)."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class AdmissionError(ReproError):
    """Raised when a submission is rejected by admission control.

    The :class:`~repro.server.AnalyticsServer` raises this when its
    bounded wait queue is full and the admission policy is ``"reject"``
    — explicit backpressure the caller is expected to handle (retry
    later, shed the query, or drain first).
    """


class TenantQuotaError(AdmissionError):
    """Raised when a submission exceeds its *tenant's* admission quota.

    A subclass of :class:`AdmissionError` so existing backpressure
    handlers keep working, but machine-distinguishable: a cluster
    router (or a tenant-aware client) can tell "this tenant is over its
    own budget" apart from "the shard as a whole is full" and react
    differently — throttle the tenant instead of retrying elsewhere,
    where a capacity rejection would justify re-routing.
    """


class QueryCancelledError(ReproError):
    """Raised when the result of a cancelled query is accessed.

    ``QueryHandle.cancel()`` tags the query's task sets as exhausted so
    the §2.3 finalization protocol winds the query down through the
    normal completion path; afterwards every attempt to fetch or read
    its result raises this error.  The latency record survives (with
    ``cancelled=True``) so throughput accounting stays consistent.
    """


class QueryFailedError(ReproError):
    """Raised when the result of a failed query is accessed.

    An exception inside a morsel (an engine bug, an injected fault, a
    dead worker) fails *only* that query: its task sets are drained and
    wound down through the same §2.3 finalization path cancellation
    uses, its channel is failed so consumers wake, its slot is freed,
    and a latency record with ``failed=True`` plus the captured error
    text survives.  ``QueryHandle.fetch()`` / ``result()`` and
    ``AnalyticsServer.result()`` raise this error afterwards; the
    original exception is attached as ``__cause__`` where it is
    available in-process.
    """


class QueryTimeoutError(ReproError):
    """Raised when a query misses its submission deadline.

    ``submit(..., deadline=...)`` arms a per-query deadline measured
    from arrival.  Expiry is detected inside the scheduler (a single
    float compare per decision, identical in virtual and wall time) and
    the query is wound down through the failure path with this error.
    Deadline misses are permanent: re-running the same query under the
    same deadline would time out again, so they are never retried.
    """


class ChannelClosedError(ReproError):
    """Raised when a closed :class:`~repro.runtime.channel.ResultChannel`
    is written to.

    Producers see this when they ``put`` into a channel whose consumer
    side has gone away without a cancellation (a shutdown mid-stream);
    consumers never see it — a closed channel simply ends iteration.
    """


class UnknownTicketError(ReproError):
    """Raised when a backend is asked about a ticket it never issued."""


class WorkerFailedError(ReproError):
    """Raised when an execution worker failed outside any single query.

    Covers worker threads dying on scheduler-invariant violations and
    process-pool workers lost to ``BrokenProcessPool``.  Transient: the
    queries in flight on the failed worker are safe to re-execute.
    """

    transient = True


class WorkerDiedError(WorkerFailedError):
    """Raised inside a worker to simulate (or report) its own death.

    The scheduler first fails the query the worker was executing, then
    re-raises this error so the hosting backend can retire the worker —
    the :class:`~repro.runtime.threaded.ThreadedBackend` respawns a
    replacement thread, the process backend rebuilds its pool.
    """


class InjectedFault(ReproError):
    """Raised by deterministic fault injection (``repro.runtime.faults``).

    Marks a failure as *synthetic*: chaos tests assert on it and the
    retry machinery treats it as transient.
    """

    transient = True


class EngineError(ReproError):
    """Raised by the mini columnar engine (unknown column, bad plan, ...)."""


class PlanError(EngineError):
    """Raised when a query plan is malformed or references missing tables."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications (bad mix weights, ...)."""


class CalibrationError(ReproError):
    """Raised when load calibration cannot find a feasible arrival rate."""


class TuningError(ReproError):
    """Raised by the self-tuning optimizer on invalid parameter spaces."""


def error_from_text(text: str) -> ReproError:
    """Reconstruct a library error from its ``"ClassName: message"`` form.

    Failure records carry the error as a plain string (``LatencyRecord``
    stays a flat, picklable dataclass and failures must survive the
    process-pool pipe).  This maps the leading class name back onto the
    hierarchy above so retry classification (``transient``) works on
    records that crossed a process boundary; unknown class names fall
    back to a plain :class:`ReproError`.
    """
    name, _, message = text.partition(":")
    cls = globals().get(name.strip())
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
        message = text
    return cls(message.strip())
