"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchedulerError(ReproError):
    """Raised when a scheduler is driven through an invalid transition.

    Examples include admitting a resource group twice, finalizing a task
    set that still has pinned workers, or stepping a worker that does not
    belong to the scheduler.
    """


class SlotError(SchedulerError):
    """Raised on invalid global-slot-array operations (e.g. double install)."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class AdmissionError(ReproError):
    """Raised when a submission is rejected by admission control.

    The :class:`~repro.server.AnalyticsServer` raises this when its
    bounded wait queue is full and the admission policy is ``"reject"``
    — explicit backpressure the caller is expected to handle (retry
    later, shed the query, or drain first).
    """


class QueryCancelledError(ReproError):
    """Raised when the result of a cancelled query is accessed.

    ``QueryHandle.cancel()`` tags the query's task sets as exhausted so
    the §2.3 finalization protocol winds the query down through the
    normal completion path; afterwards every attempt to fetch or read
    its result raises this error.  The latency record survives (with
    ``cancelled=True``) so throughput accounting stays consistent.
    """


class ChannelClosedError(ReproError):
    """Raised when a closed :class:`~repro.runtime.channel.ResultChannel`
    is written to.

    Producers see this when they ``put`` into a channel whose consumer
    side has gone away without a cancellation (a shutdown mid-stream);
    consumers never see it — a closed channel simply ends iteration.
    """


class EngineError(ReproError):
    """Raised by the mini columnar engine (unknown column, bad plan, ...)."""


class PlanError(EngineError):
    """Raised when a query plan is malformed or references missing tables."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications (bad mix weights, ...)."""


class CalibrationError(ReproError):
    """Raised when load calibration cannot find a feasible arrival rate."""


class TuningError(ReproError):
    """Raised by the self-tuning optimizer on invalid parameter spaces."""
