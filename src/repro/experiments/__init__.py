"""Experiment drivers: one module per figure of the paper's evaluation.

Every driver exposes a ``run(config)`` function returning a result object
with structured rows plus a ``render()`` method that prints the same
rows/series the corresponding paper figure reports.  The benchmark
harness under ``benchmarks/`` wraps these drivers.

=============  ==========================================================
Module         Paper figure
=============  ==========================================================
``figure1``    Fig. 1 — slowdown of short/long queries, ours vs PostgreSQL
``figure5``    Fig. 5 — static vs adaptive morsel execution traces
``figure7``    Fig. 7 — geomean latency under increasing load (in-Umbra)
``figure8``    Fig. 8 — per-query latency distributions at full load
``figure9``    Fig. 9 — cross-system latency/slowdown/throughput vs load
``figure10``   Fig. 10 — scheduling overhead vs core count
``figure11``   Fig. 11 — per-query slowdowns across systems at load 0.96
``ablation``   DESIGN.md §5 — design-choice ablations
=============  ==========================================================
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
