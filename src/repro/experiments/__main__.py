"""Command-line entry point for the figure-reproduction experiments.

Usage::

    python -m repro.experiments figure7
    python -m repro.experiments figure9 --paper
    python -m repro.experiments all --duration 20

``--paper`` uses the paper-scale preset (minutes of virtual time);
``--duration`` overrides the sustained-run length of the quick preset.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ExperimentConfig
from repro.experiments import (
    ablation,
    figure1,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)

DRIVERS = {
    "figure1": figure1,
    "figure5": figure5,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "ablation": ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(DRIVERS) + ["all"],
        help="which figure to regenerate ('all' runs every driver)",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper-scale preset (long runs)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override the sustained-run duration in virtual seconds",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="simulated worker count"
    )
    parser.add_argument("--seed", type=int, default=None, help="root seed")
    parser.add_argument(
        "--jobs",
        default="1",
        help=(
            "worker processes for sweep fan-out (drivers that support "
            "it); 'auto' lets the cost heuristic pick, small grids fall "
            "back to the sequential loop"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each figure's rows to DIR/<figure>.csv",
    )
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.paper() if args.paper else ExperimentConfig.quick()
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.workers is not None:
        overrides["n_workers"] = args.workers
    if args.seed is not None:
        overrides["seed"] = args.seed
    return config.with_options(**overrides) if overrides else config


def main(argv=None) -> int:
    import inspect

    args = build_parser().parse_args(argv)
    config = make_config(args)
    names = sorted(DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_config = config
        if name in ("figure9", "figure11") and config.compile_seconds == 0.0:
            # §5.4 end-to-end experiments include code generation.
            run_config = config.with_options(
                compile_seconds=figure9.DEFAULT_COMPILE_SECONDS
            )
        run_fn = DRIVERS[name].run
        kwargs = {}
        jobs = args.jobs if args.jobs == "auto" else int(args.jobs)
        if jobs != 1 and "jobs" in inspect.signature(run_fn).parameters:
            kwargs["jobs"] = jobs
        result = run_fn(run_config, **kwargs)
        print(result.render())
        print()
        if args.csv is not None:
            from pathlib import Path

            from repro.metrics.export import rows_to_csv

            directory = Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            target = rows_to_csv(result.rows, directory / f"{name}.csv")
            print(f"rows written to {target}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
