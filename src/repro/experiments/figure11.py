"""Figure 11 — per-query slowdowns across systems at load 0.96 (§5.4).

The same setup as Figure 9, fixed at load 0.96, broken down for TPC-H
Q3, Q6, Q11 and Q18 at SF3 and SF30.  Reported headline factors:

* SF3 mean slowdown: >=3.5x better than MonetDB (Q6) up to 6.4x (Q11),
  >30x better than PostgreSQL on every query;
* maximum slowdown improves 5.9x-90x over MonetDB and >30x (up to two
  orders of magnitude) over PostgreSQL;
* even at SF30, extremely short queries (Q6, Q11) gain >3.4x mean and
  up to 14.5x max slowdown over MonetDB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentConfig
from repro.experiments.figure9 import (
    DEFAULT_COMPILE_SECONDS,
    DEFAULT_SYSTEMS,
    _make_runner,
    calibrate_max_rate,
)
from repro.metrics.report import format_table
from repro.metrics.slowdown import slowdown_summary

FIGURE11_QUERIES = ("Q3", "Q6", "Q11", "Q18")


@dataclass
class Figure11Result:
    """Per-(system, query, SF) slowdown distributions at load 0.96."""

    rows: List[Dict[str, object]]
    max_rates: Dict[str, float]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "system",
            "query",
            "sf",
            "count",
            "mean_slowdown",
            "p95_slowdown",
            "max_slowdown",
        ]
        table_rows = [
            [
                row["system"],
                row["query"],
                row["sf"],
                row["count"],
                row["mean_slowdown"],
                row["p95_slowdown"],
                row["max_slowdown"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title="Figure 11: per-query slowdowns at load 0.96",
        )

    def metric(self, system: str, query: str, sf: float, key: str) -> float:
        """One cell of the figure."""
        for row in self.rows:
            if (
                row["system"] == system
                and row["query"] == query
                and row["sf"] == sf
            ):
                return float(row[key])
        return float("nan")

    def improvement(self, query: str, sf: float, key: str, baseline: str) -> float:
        """baseline metric / tuning metric."""
        return self.metric(baseline, query, sf, key) / self.metric(
            "tuning", query, sf, key
        )


def run(
    config: ExperimentConfig = None,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    queries: Sequence[str] = FIGURE11_QUERIES,
    load: float = 0.96,
) -> Figure11Result:
    """Execute the Figure 11 experiment."""
    config = config or ExperimentConfig.quick().with_options(
        compile_seconds=DEFAULT_COMPILE_SECONDS
    )
    mix = config.mix()
    rows: List[Dict[str, object]] = []
    max_rates: Dict[str, float] = {}
    for system in systems:
        max_rate = calibrate_max_rate(system, config, mix)
        max_rates[system] = max_rate
        runner = _make_runner(system, config, mix)
        rebased = runner(load * max_rate, config.duration, 11)
        by_query = rebased.by_query()
        for query in queries:
            records = by_query.get(query, [])
            for sf in (config.sf_small, config.sf_large):
                group = [r for r in records if r.scale_factor == sf]
                summary = slowdown_summary(group)
                rows.append(
                    {
                        "system": system,
                        "query": query,
                        "sf": sf,
                        "count": summary["count"],
                        "mean_slowdown": summary["mean_slowdown"],
                        "p95_slowdown": summary["p95_slowdown"],
                        "max_slowdown": summary["max_slowdown"],
                    }
                )
    return Figure11Result(rows=rows, max_rates=max_rates, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
