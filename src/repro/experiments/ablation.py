"""Ablation studies for the design choices DESIGN.md calls out.

These are not figures from the paper; they quantify how much each design
ingredient contributes, using the same mixed workload at 95% load:

* ``t_max`` — target task duration (responsiveness vs. overhead trade);
* ``ewma_alpha`` — throughput-estimate recency weight;
* ``decay`` — self-tuned vs. fixed decay vs. no decay (fair);
* ``fanout`` — high-load update fan-out restriction on/off;
* ``startup`` — exponential startup probing vs. a large static initial
  morsel (responsiveness of the first tasks of a pipeline);
* ``shutdown`` — photo-finish shutdown state on/off (straggler latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    ExperimentConfig,
    measure_isolated_latencies,
    split_by_scale_factor,
)
from repro.experiments.parallel import SweepCell, run_cells
from repro.metrics.report import format_table
from repro.metrics.slowdown import slowdown_summary
from repro.workloads.load import arrival_rate_for_load


@dataclass
class AblationResult:
    """Mean/p95 slowdown per ablation variant."""

    rows: List[Dict[str, object]]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "variant",
            "sf",
            "mean_slowdown",
            "p95_slowdown",
            "overhead_%",
        ]
        table_rows = [
            [
                row["variant"],
                row["sf"],
                row["mean_slowdown"],
                row["p95_slowdown"],
                row["overhead"],
            ]
            for row in self.rows
        ]
        return format_table(headers, table_rows, title="Design-choice ablations")

    def metric(self, variant: str, sf: float, key: str) -> float:
        """One cell of the ablation table."""
        for row in self.rows:
            if row["variant"] == variant and row["sf"] == sf:
                return float(row[key])
        return float("nan")


#: variant name -> (scheduler name, scheduler-config overrides).
#: The fan-out variants use a small slot array so occupancy actually
#: crosses the half-full threshold at which §2.3's restriction engages.
DEFAULT_VARIANTS = {
    "tuning": ("tuning", {}),
    "stride-no-tuning": ("stride", {}),
    "fair": ("fair", {}),
    "tmax-0.5ms": ("tuning", {"t_max": 0.0005}),
    "tmax-8ms": ("tuning", {"t_max": 0.008}),
    "alpha-0.2": ("tuning", {"ewma_alpha": 0.2}),
    "fanout-restricted-16slots": ("tuning", {"slot_capacity": 16}),
    "fanout-full-16slots": (
        "tuning",
        {"slot_capacity": 16, "restrict_fanout": False},
    ),
}


def run(
    config: ExperimentConfig = None,
    variants: Dict[str, tuple] = None,
    load: float = 0.95,
    jobs=1,
) -> AblationResult:
    """Run each variant on the identical workload at the given load.

    ``jobs > 1`` fans variants out over the shared warm pool.  Every
    variant runs the same (config, rate, salt) workload, so a pooled
    worker builds it once and serves all its variants from the cache.
    """
    config = config or ExperimentConfig.quick()
    variants = variants or DEFAULT_VARIANTS
    mix = config.mix()
    bases = measure_isolated_latencies(mix.queries, config)
    rate = arrival_rate_for_load(mix, load, bases, n_workers=config.n_workers)
    names = list(variants)
    cells = [
        SweepCell(
            system=variants[name][0],
            rate=rate,
            salt=5,
            config=config,
            max_time=config.duration,
            scheduler_overrides=dict(variants[name][1]),
        )
        for name in names
    ]
    outcomes = run_cells(cells, jobs=jobs)
    rows: List[Dict[str, object]] = []
    for variant, outcome in zip(names, outcomes):
        records = outcome.records.apply_bases(bases)
        short, long_ = split_by_scale_factor(records, config.sf_small, config.sf_large)
        for sf, group in ((config.sf_small, short), (config.sf_large, long_)):
            summary = slowdown_summary(group)
            rows.append(
                {
                    "variant": variant,
                    "sf": sf,
                    "mean_slowdown": summary["mean_slowdown"],
                    "p95_slowdown": summary["p95_slowdown"],
                    "overhead": outcome.total_overhead_percent,
                }
            )
    return AblationResult(rows=rows, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
