"""Figure 5 — static vs. adaptive morsel execution traces.

"We compare the execution traces of TPC-H queries 13 and 21 at scale
factor one.  All morsels have a fixed size of 60 thousand tuples.
However, morsel durations differ by more than 30x."  With the adaptive
framework (1 ms target), execution profiles become predictable and the
shutdown phase produces a photo finish.

The driver runs Q13 and Q21 concurrently (arriving together) under both
policies with trace recording enabled and reports, per policy:

* min / max / mean morsel duration and the max/min spread;
* per-query makespan;
* morsel counts per pipeline phase (startup / default / shutdown /
  static).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.morsel_exec import MorselMode
from repro.experiments.common import ExperimentConfig, run_policy
from repro.metrics.report import format_table
from repro.runtime.trace import TraceRecorder
from repro.workloads.profiles import tpch_query


@dataclass
class Figure5Result:
    """Trace statistics under both morsel policies."""

    rows: List[Dict[str, object]]
    phase_counts: Dict[str, Dict[str, int]]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "policy",
            "tasks",
            "morsels",
            "task_min_ms",
            "task_max_ms",
            "task_mean_ms",
            "spread",
            "robust_spread",
            "makespan_Q13_ms",
            "makespan_Q21_ms",
        ]
        table_rows = [
            [
                row["policy"],
                row["tasks"],
                row["morsels"],
                row["min_ms"],
                row["max_ms"],
                row["mean_ms"],
                row["spread"],
                row["robust_spread"],
                row["makespan_q13_ms"],
                row["makespan_q21_ms"],
            ]
            for row in self.rows
        ]
        lines = [
            format_table(
                headers,
                table_rows,
                title="Figure 5: static vs adaptive morsel execution (Q13+Q21, SF1)",
            )
        ]
        for policy, counts in self.phase_counts.items():
            phases = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            lines.append(f"{policy} phases: {phases}")
        return "\n".join(lines)

    def spread(self, policy: str) -> float:
        """Max/min morsel-duration ratio for one policy."""
        for row in self.rows:
            if row["policy"] == policy:
                return float(row["spread"])
        return float("nan")


def _run_trace(config: ExperimentConfig, mode: MorselMode, t_max: float):
    queries = [tpch_query("Q13", 1.0), tpch_query("Q21", 1.0)]
    workload = [(0.0, queries[0]), (0.0, queries[1])]
    trace = TraceRecorder(enabled=True)
    run_policy(
        "fair",
        workload,
        config,
        trace=trace,
        scheduler_overrides={"morsel_mode": mode, "t_max": t_max},
    )
    return trace


def _query_makespans(trace: TraceRecorder) -> Dict[int, float]:
    makespans: Dict[int, float] = {}
    for query_id in {s.query_id for s in trace.spans}:
        spans = trace.spans_for_query(query_id)
        makespans[query_id] = max(s.end for s in spans) - min(
            s.start for s in spans
        )
    return makespans


def run(config: ExperimentConfig = None) -> Figure5Result:
    """Execute the Figure 5 experiment."""
    config = config or ExperimentConfig.quick()
    rows: List[Dict[str, object]] = []
    phase_counts: Dict[str, Dict[str, int]] = {}
    for policy, mode, t_max in (
        ("static-60k", MorselMode.STATIC, config.t_max),
        ("adaptive-1ms", MorselMode.ADAPTIVE, 0.001),
    ):
        trace = _run_trace(config, mode, t_max)
        # Task-level durations are what the scheduler sees; nested
        # startup/shutdown morsels are transparent to it (§3.1).
        stats = trace.duration_stats(task_level=True)
        makespans = _query_makespans(trace)
        counts: Dict[str, int] = {}
        for span in trace.spans:
            counts[span.phase] = counts.get(span.phase, 0) + 1
        phase_counts[policy] = counts
        rows.append(
            {
                "policy": policy,
                "tasks": len(trace.task_spans),
                "morsels": len(trace.spans),
                "min_ms": stats["min"] * 1000.0,
                "max_ms": stats["max"] * 1000.0,
                "mean_ms": stats["mean"] * 1000.0,
                "spread": stats["spread"],
                "robust_spread": stats["robust_spread"],
                "makespan_q13_ms": makespans.get(0, float("nan")) * 1000.0,
                "makespan_q21_ms": makespans.get(1, float("nan")) * 1000.0,
            }
        )
    return Figure5Result(rows=rows, phase_counts=phase_counts, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
