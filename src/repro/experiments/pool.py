"""The persistent warm sweep pool: long-lived workers, compact handoff.

PR 1 parallelized figure sweeps with a throwaway
``ProcessPoolExecutor`` per ``run_cells`` call.  That made small grids
*slower* than the sequential loop: every call paid process startup,
package import, and per-cell deep-object pickling.  This module replaces
it with one **shared, long-lived pool**:

* **Warm workers** — spawned once per process, pre-importing the
  simulation stack and running registered warmup thunks (e.g. engine
  calibration for a ``(scale_factor, seed)`` database profile) in the
  initializer.  Every later sweep of the process reuses them.
* **Keyed workload cache** — a worker builds the workload for a
  :attr:`~repro.experiments.parallel.SweepCell.workload_key` once;
  cells that share ``(config, rate, salt)`` (all schedulers of one load
  level) skip ``build_workload`` entirely.  Workload generation is
  pure, so the cached instance is bit-identical to a fresh build.
* **Compact pickle-5 handoff** — chunk payloads are serialized
  explicitly with pickle protocol 5 and out-of-band buffer extraction
  (:func:`dumps_oob`), and results cross as the flat-array encodings of
  :meth:`~repro.metrics.latency.LatencyCollector.to_arrays` instead of
  per-record object pickles.
* **Cost-aware dispatch** — cells are sorted longest-estimated-first
  and submitted in chunks, so a straggler cell starts early instead of
  serializing the tail; outcomes are restored to input order on
  collect.
* **Auto-jobs heuristic** — :func:`resolve_jobs` falls back to the
  sequential loop when the estimated grid cost cannot amortize pool
  startup and per-cell IPC (or when the machine has a single CPU, where
  a process pool can only add overhead).

The pool is deliberately a module-level singleton (:func:`get_pool`):
the whole point is that consecutive sweeps — figure7, then figure9,
then the ablations — hit the same warm workers.  ``atexit`` tears it
down.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments.parallel import CellOutcome, SweepCell, run_cell
from repro.metrics.latency import LatencyCollector

# ----------------------------------------------------------------------
# Pickle-5 out-of-band framing
# ----------------------------------------------------------------------
# ``multiprocessing`` pickles task payloads with ``pickle.DEFAULT_PROTOCOL``
# (protocol 4 on the supported interpreters), which embeds every numpy
# buffer in the pickle stream with an extra copy.  We frame payloads
# ourselves: protocol 5 with ``buffer_callback`` extracts each large
# buffer once, raw, and the frame concatenates them after the pickle
# head.  The executor then moves a single flat ``bytes`` object.

_FRAME_MAGIC = b"RPO1"


def dumps_oob(obj) -> bytes:
    """Serialize with pickle protocol 5, out-of-band buffers framed raw."""
    buffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    parts = [
        _FRAME_MAGIC,
        struct.pack("<I", len(raws)),
        struct.pack("<Q", len(head)),
    ]
    parts.extend(struct.pack("<Q", raw.nbytes) for raw in raws)
    parts.append(head)
    parts.extend(raws)
    return b"".join(parts)


def loads_oob(blob: bytes):
    """Inverse of :func:`dumps_oob`."""
    if blob[:4] != _FRAME_MAGIC:
        raise ValueError("not a pool payload frame")
    view = memoryview(blob)
    n_buffers = struct.unpack_from("<I", view, 4)[0]
    head_len = struct.unpack_from("<Q", view, 8)[0]
    offset = 16
    sizes = []
    for _ in range(n_buffers):
        sizes.append(struct.unpack_from("<Q", view, offset)[0])
        offset += 8
    head = view[offset : offset + head_len]
    offset += head_len
    buffers = []
    for size in sizes:
        buffers.append(view[offset : offset + size])
        offset += size
    return pickle.loads(head, buffers=buffers)


# ----------------------------------------------------------------------
# Outcome wire format
# ----------------------------------------------------------------------
def encode_outcome(outcome: CellOutcome) -> dict:
    """A :class:`CellOutcome` as flat arrays plus scalar counters."""
    return {
        "records": outcome.records.to_arrays(),
        "tasks_executed": outcome.tasks_executed,
        "events_processed": outcome.events_processed,
        "total_overhead_percent": outcome.total_overhead_percent,
        "end_time": outcome.end_time,
    }


def decode_outcome(payload: dict) -> CellOutcome:
    """Inverse of :func:`encode_outcome` (lossless)."""
    return CellOutcome(
        records=LatencyCollector.from_arrays(payload["records"]),
        tasks_executed=payload["tasks_executed"],
        events_processed=payload["events_processed"],
        total_overhead_percent=payload["total_overhead_percent"],
        end_time=payload["end_time"],
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Modules pre-imported by every worker at spawn, so the first real cell
#: pays no import cost (matters under the spawn/forkserver start
#: methods; free under fork).
_PREIMPORT_MODULES = (
    "repro.core",
    "repro.core.os_scheduler",
    "repro.experiments.common",
    "repro.simcore.simulator",
    "repro.workloads",
)

#: Per-worker workload cache: workload_key -> workload.  Bounded FIFO —
#: sweep grids revisit at most a few dozen keys.
_WORKLOAD_CACHE: dict = {}
_WORKLOAD_CACHE_CAP = 64
_CACHE_STATS = {"hits": 0, "misses": 0}


def _cell_workload(cell: SweepCell):
    """The cell's workload, built once per key per worker."""
    key = cell.workload_key
    workload = _WORKLOAD_CACHE.get(key)
    if workload is not None:
        _CACHE_STATS["hits"] += 1
        return workload
    _CACHE_STATS["misses"] += 1
    from repro.experiments.common import build_workload

    config = cell.config
    workload = build_workload(config.mix(), cell.rate, config, salt=cell.salt)
    if len(_WORKLOAD_CACHE) >= _WORKLOAD_CACHE_CAP:
        _WORKLOAD_CACHE.pop(next(iter(_WORKLOAD_CACHE)))
    _WORKLOAD_CACHE[key] = workload
    return workload


def workload_cache_stats() -> dict:
    """Hit/miss counters of this process's workload cache (tests)."""
    return dict(_CACHE_STATS, size=len(_WORKLOAD_CACHE))


def _worker_init(warmups: Sequence[Tuple[Callable, tuple]]) -> None:
    """Run once per worker process at spawn."""
    import importlib

    for module in _PREIMPORT_MODULES:
        importlib.import_module(module)
    for fn, args in warmups:
        fn(*args)


def _run_chunk(blob: bytes) -> bytes:
    """Execute one chunk of (input index, cell) pairs; return encodings."""
    pairs = loads_oob(blob)
    out = []
    for index, cell in pairs:
        outcome = run_cell(cell, workload=_cell_workload(cell))
        out.append((index, encode_outcome(outcome)))
    return dumps_oob(out)


def _call(blob: bytes) -> bytes:
    """Generic warm-worker call: ``fn(*args)`` with framed payloads."""
    fn, args = loads_oob(blob)
    return dumps_oob(fn(*args))


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#: Rough wall seconds per expected query arrival of a policy cell (the
#: simulator processes a few hundred events per query); fluid-model OS
#: cells are ~20x cheaper per arrival.  Only *relative* costs matter for
#: dispatch order; the absolute scale only gates the auto-jobs
#: threshold, where being coarse is fine.
SECONDS_PER_ARRIVAL = 1.0e-3
OS_CELL_FACTOR = 0.05
#: Amortization constants for :func:`resolve_jobs`.
POOL_STARTUP_SECONDS = 0.15
PER_CELL_OVERHEAD_SECONDS = 0.003


def estimate_cell_cost(cell: SweepCell) -> float:
    """Estimated wall seconds to run one cell (coarse, deterministic)."""
    arrivals = max(cell.rate * cell.config.duration, 1.0)
    factor = OS_CELL_FACTOR if cell.kind == "os" else 1.0
    return arrivals * factor * SECONDS_PER_ARRIVAL


def estimate_grid_cost(cells: Sequence[SweepCell]) -> float:
    """Estimated sequential wall seconds for a whole grid."""
    return sum(estimate_cell_cost(cell) for cell in cells)


def resolve_jobs(
    cells: Sequence[SweepCell],
    jobs: Union[int, str, None],
    force_pool: bool = False,
) -> int:
    """The worker count to actually use for this grid (1 = sequential).

    ``jobs`` of ``None``, ``0`` or ``"auto"`` asks for the CPU count.
    Unless ``force_pool`` is set, the heuristic falls back to the
    sequential loop whenever pooling cannot win: a single-CPU machine, a
    single-cell grid, or an estimated parallel saving smaller than pool
    startup (zero once the shared pool is warm) plus per-cell IPC.
    """
    cpus = os.cpu_count() or 1
    if jobs in (None, 0, "auto"):
        jobs = cpus
    jobs = min(int(jobs), len(cells))
    if jobs <= 1:
        return 1
    if force_pool:
        return jobs
    usable = min(jobs, cpus)
    if usable <= 1:
        return 1
    saved = estimate_grid_cost(cells) * (1.0 - 1.0 / usable)
    startup = 0.0 if _pool_is_warm(jobs) else POOL_STARTUP_SECONDS
    overhead = startup + PER_CELL_OVERHEAD_SECONDS * len(cells)
    return jobs if saved > overhead else 1


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class SweepPool:
    """A persistent pool of warm worker processes.

    Wraps one :class:`~concurrent.futures.ProcessPoolExecutor` whose
    workers are initialized once (pre-imports plus the warmup thunks
    registered at creation time) and stay alive across sweeps.  Use the
    module-level :func:`get_pool` for the shared instance.
    """

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, int(max_workers))
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_worker_init,
            initargs=(tuple(_WARMUPS),),
        )

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------
    def run_cells(
        self,
        cells: Sequence[SweepCell],
        chunk_size: Optional[int] = None,
        dispatch: str = "cost",
    ) -> List[CellOutcome]:
        """Run a grid on the pool; outcomes come back in input order.

        ``dispatch="cost"`` submits chunks longest-estimated-first so
        straggler cells start as early as possible; ``"input"`` keeps
        submission order.  Both produce identical outcomes.
        """
        indexed = list(enumerate(cells))
        if dispatch == "cost":
            # Deterministic: cost desc, input index as the tiebreak.
            indexed.sort(key=lambda pair: (-estimate_cell_cost(pair[1]), pair[0]))
        elif dispatch != "input":
            raise ValueError(f"unknown dispatch policy {dispatch!r}")
        if chunk_size is None:
            # ~4 chunks per worker amortizes IPC while keeping the tail
            # balanced under heterogeneous cell costs.
            chunk_size = max(1, -(-len(indexed) // (self.max_workers * 4)))
        chunks = [
            indexed[i : i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        futures = [
            self._executor.submit(_run_chunk, dumps_oob(chunk))
            for chunk in chunks
        ]
        outcomes: List[Optional[CellOutcome]] = [None] * len(indexed)
        for future in futures:
            for index, encoded in loads_oob(future.result()):
                outcomes[index] = decode_outcome(encoded)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Generic warm-worker calls (the process backend rides on these)
    # ------------------------------------------------------------------
    def submit_call(self, fn: Callable, *args):
        """Schedule ``fn(*args)`` on a warm worker; returns a future.

        ``fn`` and ``args`` must be picklable (module-level functions /
        ``functools.partial`` over them).  The future resolves to the
        call's return value; payloads cross in pickle-5 frames.
        """
        future = self._executor.submit(_call, dumps_oob((fn, args)))
        return _DecodingFuture(future)

    def call(self, fn: Callable, *args):
        """Run ``fn(*args)`` on a warm worker and wait for the result."""
        return self.submit_call(fn, *args).result()

    def shutdown(self) -> None:
        """Terminate the workers (the shared pool does this at exit)."""
        self._executor.shutdown(wait=True, cancel_futures=True)


class _DecodingFuture:
    """A future whose ``result()`` decodes the pickle-5 frame."""

    def __init__(self, future) -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None):
        return loads_oob(self._future.result(timeout=timeout))

    def done(self) -> bool:
        return self._future.done()


# ----------------------------------------------------------------------
# The shared instance
# ----------------------------------------------------------------------
_POOL: Optional[SweepPool] = None
#: Warmup thunks applied in every worker's initializer: ``(fn, args)``
#: pairs, deduplicated, registered before the pool first spawns.
_WARMUPS: List[Tuple[Callable, tuple]] = []


def register_warmup(fn: Callable, *args) -> None:
    """Warm every pool worker with ``fn(*args)`` at spawn.

    Typical warmups: :func:`repro.engine.calibration.warm_calibration`
    for a ``(scale_factor, seed)`` database profile.  Registration after
    the shared pool already spawned still helps — existing workers warm
    the same state lazily through their keyed caches, and future pools
    (or grown replacements) warm eagerly.
    """
    entry = (fn, tuple(args))
    if entry not in _WARMUPS:
        _WARMUPS.append(entry)


def _pool_is_warm(min_workers: int) -> bool:
    """Whether the shared pool exists with at least ``min_workers``."""
    return _POOL is not None and _POOL.max_workers >= min_workers


def get_pool(min_workers: Optional[int] = None) -> SweepPool:
    """The shared warm pool, created on first use and reused after.

    A request for more workers than the current pool has replaces it
    (the warm state is per-worker, so growth pays the startup cost
    once); a request for fewer reuses the existing, larger pool.
    """
    global _POOL
    wanted = min_workers or os.cpu_count() or 1
    if _POOL is not None and _POOL.max_workers >= wanted:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown()
    _POOL = SweepPool(max_workers=wanted)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared pool (idempotent; re-creatable after)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)
