"""Figure 8 — detailed latency characteristics at full load.

"Detailed latency characteristics for selected TPC-H queries at load
1.0.  For each scheduler, all data points are taken from the same
experiment" — i.e. one sustained run at load 1.0 per scheduler, then the
latency distribution of Q1, Q3, Q6, Q11 and Q18 at SF3 and SF30 is
broken out of it.

We report mean, p95 and max slowdown per (scheduler, query, SF) and the
paper's comparisons: tuning improves the mean slowdown of Q1/Q3 at SF3
by 6.8x/2.8x over fair, with even stronger tail effects, and the legacy
Umbra scheduler exhibits an extremely heavy tail for short queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import (
    ExperimentConfig,
    build_workload,
    filter_queries,
    measure_isolated_latencies,
    run_policy,
)
from repro.metrics.report import format_table
from repro.metrics.slowdown import slowdown_summary
from repro.workloads.load import arrival_rate_for_load

FIGURE8_QUERIES = ("Q1", "Q3", "Q6", "Q11", "Q18")
DEFAULT_SCHEDULERS = ("tuning", "fair", "umbra", "fifo")


@dataclass
class Figure8Result:
    """Per-(scheduler, query, SF) slowdown distributions at load 1.0."""

    rows: List[Dict[str, object]]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "scheduler",
            "query",
            "sf",
            "count",
            "mean_slowdown",
            "p95_slowdown",
            "max_slowdown",
        ]
        table_rows = [
            [
                row["scheduler"],
                row["query"],
                row["sf"],
                row["count"],
                row["mean_slowdown"],
                row["p95_slowdown"],
                row["max_slowdown"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title="Figure 8: per-query latency distributions at load 1.0",
        )

    def metric(self, scheduler: str, query: str, sf: float, key: str) -> float:
        """Look up one cell (e.g. mean slowdown of Q1@SF3 under fair)."""
        for row in self.rows:
            if (
                row["scheduler"] == scheduler
                and row["query"] == query
                and row["sf"] == sf
            ):
                return float(row[key])
        return float("nan")

    def improvement(self, query: str, sf: float, key: str, baseline: str) -> float:
        """baseline metric / tuning metric (paper reports these factors)."""
        return self.metric(baseline, query, sf, key) / self.metric(
            "tuning", query, sf, key
        )


def run(
    config: ExperimentConfig = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    queries: Sequence[str] = FIGURE8_QUERIES,
) -> Figure8Result:
    """Execute the Figure 8 experiment (one load-1.0 run per scheduler)."""
    config = config or ExperimentConfig.quick()
    mix = config.mix()
    bases = measure_isolated_latencies(mix.queries, config)
    rate = arrival_rate_for_load(mix, 1.0, bases, n_workers=config.n_workers)
    workload = build_workload(mix, rate, config)
    rows: List[Dict[str, object]] = []
    for scheduler in schedulers:
        result = run_policy(scheduler, workload, config, max_time=config.duration)
        records = result.records.apply_bases(bases)
        grouped = filter_queries(records, queries)
        for query in queries:
            for sf in (config.sf_small, config.sf_large):
                group = grouped[query].get(sf, [])
                summary = slowdown_summary(group)
                rows.append(
                    {
                        "scheduler": scheduler,
                        "query": query,
                        "sf": sf,
                        "count": summary["count"],
                        "mean_slowdown": summary["mean_slowdown"],
                        "p95_slowdown": summary["p95_slowdown"],
                        "max_slowdown": summary["max_slowdown"],
                    }
                )
    return Figure8Result(rows=rows, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
