"""Shared infrastructure for the figure-reproduction experiments.

The paper runs each sustained-load experiment for 5-30 minutes on a 20
hardware-thread machine.  A pure-Python discrete-event simulation cannot
process that many scheduling events in a benchmark run, so each driver
accepts an :class:`ExperimentConfig` with two presets:

* :meth:`ExperimentConfig.quick` — scaled-down durations (default for
  the pytest benchmarks; minutes of virtual time become tens of
  seconds).  All *relative* effects survive the scaling because every
  scheduler sees the identical workload.
* :meth:`ExperimentConfig.paper` — closer to the paper's setup for
  longer offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import SchedulerConfig, make_scheduler
from repro.core.os_scheduler import OsSchedulerModel, OsSystemProfile
from repro.core.specs import QuerySpec
from repro.metrics.latency import LatencyCollector, query_key
from repro.runtime.simulated import SimulatedBackend
from repro.runtime.trace import TraceRecorder
from repro.simcore import RngFactory, SimulationResult
from repro.workloads import generate_workload, tpch_mix
from repro.workloads.mixes import QueryMix

Workload = List[Tuple[float, QuerySpec]]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    n_workers: int = 20
    seed: int = 42
    #: Sustained-run length in virtual seconds.
    duration: float = 30.0
    t_max: float = 0.002
    noise_sigma: float = 0.05
    #: Tracking / refresh durations for the self-tuning controller,
    #: scaled with ``duration`` relative to the paper's 20 s / 60 s.
    tracking_duration: float = 3.0
    refresh_duration: float = 10.0
    #: Code-generation time per query (end-to-end experiments only).
    compile_seconds: float = 0.0
    sf_small: float = 3.0
    sf_large: float = 30.0
    p_small: float = 0.75

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Benchmark-friendly scale (default)."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Close to the paper's setup; minutes of virtual time."""
        return cls(
            duration=300.0,
            tracking_duration=20.0,
            refresh_duration=60.0,
        )

    def with_options(self, **kwargs) -> "ExperimentConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    def scheduler_config(self, **overrides) -> SchedulerConfig:
        """Derive the scheduler configuration."""
        base = dict(
            n_workers=self.n_workers,
            t_max=self.t_max,
            tracking_duration=self.tracking_duration,
            refresh_duration=self.refresh_duration,
        )
        base.update(overrides)
        return SchedulerConfig(**base)

    def mix(self) -> QueryMix:
        """The paper's TPC-H SF3/SF30 mix under this configuration."""
        return tpch_mix(
            sf_small=self.sf_small,
            sf_large=self.sf_large,
            p_small=self.p_small,
            compile_seconds=self.compile_seconds,
        )


# ----------------------------------------------------------------------
# Base latencies
# ----------------------------------------------------------------------
#: Memoized isolated base latencies.  The measurement is a deterministic
#: pure function of (query specs, scheduler-relevant config fields), so
#: repeat figure runs under the same config — e.g. a sequential and a
#: parallel sweep of the same figure — reuse it instead of re-simulating
#: every query in isolation.
_ISOLATED_LATENCY_CACHE: Dict[tuple, Dict[str, float]] = {}


def clear_isolated_latency_cache() -> None:
    """Drop memoized base latencies (tests; config-independent reruns)."""
    _ISOLATED_LATENCY_CACHE.clear()


def measure_isolated_latencies(
    queries: Iterable[QuerySpec],
    config: ExperimentConfig,
) -> Dict[str, float]:
    """Isolated all-cores latency per distinct query (§5.2 baseline).

    Each query runs alone through the stride scheduler with noise
    disabled; the result is deterministic and scheduler-independent,
    which makes it memoizable across sweep cells of one experiment run.
    """
    queries = list(queries)
    cache_key = (
        tuple(queries),
        config.n_workers,
        config.t_max,
        config.seed,
        config.tracking_duration,
        config.refresh_duration,
    )
    cached = _ISOLATED_LATENCY_CACHE.get(cache_key)
    if cached is not None:
        return dict(cached)
    backend = SimulatedBackend(
        lambda: make_scheduler("stride", config.scheduler_config()),
        seed=config.seed,
        noise_sigma=0.0,
    )
    bases: Dict[str, float] = {}
    for query in queries:
        key = query_key(query.name, query.scale_factor)
        if key in bases:
            continue
        result = backend.execute([(0.0, query)])
        bases[key] = result.records.records[0].latency
    _ISOLATED_LATENCY_CACHE[cache_key] = dict(bases)
    return bases


def single_thread_latencies(queries: Iterable[QuerySpec]) -> Dict[str, float]:
    """Single-threaded base latency per query (§5.4 baseline, analytic)."""
    bases: Dict[str, float] = {}
    for query in queries:
        bases[query_key(query.name, query.scale_factor)] = query.total_work_seconds
    return bases


def os_single_thread_latencies(
    queries: Iterable[QuerySpec], profile: OsSystemProfile
) -> Dict[str, float]:
    """Single-threaded base latency inside an OS-scheduled system."""
    bases: Dict[str, float] = {}
    for query in queries:
        bases[query_key(query.name, query.scale_factor)] = (
            profile.single_thread_latency(query)
        )
    return bases


# ----------------------------------------------------------------------
# Running policies
# ----------------------------------------------------------------------
def run_policy(
    name: str,
    workload: Workload,
    config: ExperimentConfig,
    max_time: Optional[float] = None,
    trace: Optional[TraceRecorder] = None,
    scheduler_overrides: Optional[dict] = None,
) -> SimulationResult:
    """Run one task-based scheduler on a workload instance.

    Executes through the virtual-time backend of :mod:`repro.runtime`,
    which constructs scheduler and simulator exactly as this function
    historically did — results are bit-identical.
    """
    overrides = scheduler_overrides or {}
    backend = SimulatedBackend(
        lambda: make_scheduler(name, config.scheduler_config(**overrides)),
        seed=config.seed,
        noise_sigma=config.noise_sigma,
        max_time=max_time,
        trace=trace,
    )
    return backend.execute(workload)


def run_os_system(
    profile: OsSystemProfile,
    workload: Workload,
    config: ExperimentConfig,
    max_time: Optional[float] = None,
) -> LatencyCollector:
    """Run the fluid model of an OS-scheduled system on a workload."""
    model = OsSchedulerModel(profile, n_cores=config.n_workers)
    return model.run(list(workload), max_time=max_time)


def build_workload(
    mix: QueryMix,
    rate: float,
    config: ExperimentConfig,
    salt: int = 0,
) -> Workload:
    """Deterministic Poisson workload for this experiment config."""
    rng = RngFactory(config.seed).fork(salt).stream("workload")
    return generate_workload(mix, rate=rate, duration=config.duration, rng=rng)


def split_by_scale_factor(
    collector: LatencyCollector, small: float, large: float
) -> Tuple[list, list]:
    """Split latency records into the (short, long) query populations."""
    groups = collector.by_scale_factor()
    return groups.get(small, []), groups.get(large, [])


def filter_queries(
    collector: LatencyCollector, names: Sequence[str]
) -> Dict[str, Dict[float, list]]:
    """records[name][scale_factor] for the selected query names."""
    wanted = set(names)
    out: Dict[str, Dict[float, list]] = {name: {} for name in names}
    for record in collector.records:
        if record.name in wanted:
            out[record.name].setdefault(record.scale_factor, []).append(record)
    return out
