"""Figure 10 — scheduling overhead with increasing core count (§5.3).

"At core count n, we schedule 50·n queries at the same time. ... We also
disable the optimizations at high load...  The numbers thus represent
the worst-case overhead."  The figure breaks the total overhead into the
finalization, local-work, mask-update and tuning phases.

Shapes to reproduce:

* the total overhead is negligible (around 0.05% at low core counts,
  dropping to ~0.02% at 120 cores, because the relative tuning share —
  confined to one core — shrinks);
* the mask-update overhead grows linearly with the core count (updates
  are pushed into every worker once fan-out restriction is disabled);
* finalization causes almost no overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentConfig, run_policy
from repro.metrics.report import format_table
from repro.simcore import RngFactory
from repro.workloads.mixes import QueryMix

DEFAULT_CORES = (1, 20, 40, 60, 120)
#: Queries scheduled per core (the paper uses 50; the quick preset
#: scales this down to keep pure-Python event counts tractable).
PAPER_QUERIES_PER_CORE = 50
QUICK_QUERIES_PER_CORE = 6


@dataclass
class Figure10Result:
    """Per-phase overhead percentages per core count."""

    rows: List[Dict[str, object]]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "cores",
            "queries",
            "finalization_%",
            "local_work_%",
            "mask_updates_%",
            "tuning_%",
            "total_%",
        ]
        table_rows = [
            [
                row["cores"],
                row["queries"],
                row["finalization"],
                row["local_work"],
                row["mask_updates"],
                row["tuning"],
                row["total"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers, table_rows, title="Figure 10: scheduling overhead vs core count"
        )

    def phase_series(self, phase: str) -> List[Dict[str, float]]:
        """(cores, overhead%) series for one stacked area of the figure."""
        return [
            {"cores": float(row["cores"]), "percent": float(row[phase])}
            for row in self.rows
        ]


def _burst_workload(
    mix: QueryMix, count: int, seed: int
) -> List:
    """``count`` queries, all arriving at time zero."""
    rng = RngFactory(seed).stream("figure10-burst")
    queries = mix.sample(count, rng)
    return [(0.0, query) for query in queries]


def run(
    config: ExperimentConfig = None,
    cores: Sequence[int] = DEFAULT_CORES,
    queries_per_core: int = QUICK_QUERIES_PER_CORE,
) -> Figure10Result:
    """Execute the overhead sweep."""
    config = config or ExperimentConfig.quick().with_options(t_max=0.004)
    mix = config.mix()
    rows: List[Dict[str, object]] = []
    for n_cores in cores:
        count = queries_per_core * n_cores
        workload = _burst_workload(mix, count, seed=config.seed + n_cores)
        run_config = config.with_options(n_workers=n_cores)
        result = run_policy(
            "tuning",
            workload,
            run_config,
            # Worst case: high-load fan-out restriction disabled (§5.3).
            scheduler_overrides={"restrict_fanout": False},
        )
        overhead = result.overhead_percent
        rows.append(
            {
                "cores": n_cores,
                "queries": count,
                "finalization": overhead["finalization"],
                "local_work": overhead["local_work"],
                "mask_updates": overhead["mask_updates"],
                "tuning": overhead["tuning"],
                "total": result.total_overhead_percent,
            }
        )
    return Figure10Result(rows=rows, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
