"""Figure 7 — query latencies under increasing load (within Umbra).

"For each scheduler, we plot the geometric mean of the query latencies
at SF3 and SF30 at load alpha in [0.8, 1.0]."  Schedulers: the
self-tuning stride scheduler, the fair (fixed-priority) stride
scheduler, Umbra's original scheduler, and FIFO.  Queries are
pre-compiled (no code-generation pipeline).

Headline checks (recorded in EXPERIMENTS.md):

* tuning SF3 geomean degrades far less from load 0.8 to 1.0 than fair
  (paper: ~17% vs ~63%, a ~2x advantage at full load);
* tuning improves SF3 geomean >4.5x over the legacy Umbra scheduler and
  >5x over FIFO at high load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import (
    ExperimentConfig,
    measure_isolated_latencies,
    split_by_scale_factor,
)
from repro.experiments.parallel import SweepCell, run_cells
from repro.metrics.report import format_table
from repro.metrics.slowdown import geometric_mean
from repro.workloads.load import arrival_rate_for_load

DEFAULT_SCHEDULERS = ("tuning", "fair", "umbra", "fifo")
DEFAULT_LOADS = (0.8, 0.85, 0.9, 0.95, 1.0)


@dataclass
class Figure7Result:
    """geomean latency per (scheduler, load, scale factor)."""

    rows: List[Dict[str, object]]
    config: ExperimentConfig

    def render(self) -> str:
        headers = ["scheduler", "load", "sf", "geomean_latency_ms", "count"]
        table_rows = [
            [row["scheduler"], row["load"], row["sf"], row["geomean_ms"], row["count"]]
            for row in self.rows
        ]
        return format_table(
            headers, table_rows, title="Figure 7: geomean latency under load"
        )

    def series(self, scheduler: str, sf: float) -> List[Tuple[float, float]]:
        """(load, geomean ms) series for one line of the figure."""
        return [
            (float(row["load"]), float(row["geomean_ms"]))
            for row in self.rows
            if row["scheduler"] == scheduler and row["sf"] == sf
        ]

    def degradation(self, scheduler: str, sf: float) -> float:
        """geomean(load max) / geomean(load min) — the §5.2 degradation."""
        series = sorted(self.series(scheduler, sf))
        if len(series) < 2:
            return float("nan")
        return series[-1][1] / series[0][1]


def run(
    config: ExperimentConfig = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    loads: Sequence[float] = DEFAULT_LOADS,
    jobs=1,
) -> Figure7Result:
    """Execute the Figure 7 sweep.

    ``jobs > 1`` fans cells out over the shared warm pool;
    ``jobs="auto"`` lets the cost heuristic decide.  The cells of one
    load level share a workload key, so pooled workers build each load's
    workload once for all schedulers.
    """
    config = config or ExperimentConfig.quick()
    mix = config.mix()
    bases = measure_isolated_latencies(mix.queries, config)
    cells = []
    for load_index, load in enumerate(loads):
        rate = arrival_rate_for_load(mix, load, bases, n_workers=config.n_workers)
        for scheduler in schedulers:
            cells.append(
                SweepCell(
                    system=scheduler,
                    rate=rate,
                    salt=load_index,
                    config=config,
                    max_time=config.duration,
                )
            )
    outcomes = run_cells(cells, jobs=jobs)
    rows: List[Dict[str, object]] = []
    for cell, outcome in zip(cells, outcomes):
        load = loads[cell.salt]
        records = outcome.records.apply_bases(bases)
        short, long_ = split_by_scale_factor(records, config.sf_small, config.sf_large)
        for sf, group in ((config.sf_small, short), (config.sf_large, long_)):
            latencies = [r.latency for r in group]
            rows.append(
                {
                    "scheduler": cell.system,
                    "load": load,
                    "sf": sf,
                    "geomean_ms": (
                        geometric_mean(latencies) * 1000.0
                        if latencies
                        else float("nan")
                    ),
                    "count": len(group),
                }
            )
    return Figure7Result(rows=rows, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
