"""Figure 1 — query latencies at high load, ours vs. PostgreSQL.

"The workload consists of 75% short and 25% long running queries.  The
systems are run at 95% of their maximum sustainable load for 20 minutes.
The relative slowdown is measured with respect to the isolated query
latency within each system."

The driver runs the self-tuning scheduler and the PostgreSQL-like model
at 95% of their respective oversubscription-anchored loads and reports
the slowdown distribution (p25/p50/p75/p95/max) for short (SF3) and
long (SF30) queries.  The paper's headline: the short-query tail of the
tuned scheduler is more than an order of magnitude better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.os_scheduler import POSTGRES_LIKE, OsSchedulerModel
from repro.experiments.common import (
    ExperimentConfig,
    build_workload,
    measure_isolated_latencies,
    run_os_system,
    run_policy,
    split_by_scale_factor,
)
from repro.metrics.latency import query_key
from repro.metrics.report import format_table
from repro.metrics.slowdown import percentile
from repro.workloads.load import arrival_rate_for_load


@dataclass
class Figure1Result:
    """Slowdown distributions per (system, query type)."""

    rows: List[Dict[str, object]]
    config: ExperimentConfig

    def render(self) -> str:
        """The rows Figure 1 plots (slowdown distribution per group)."""
        headers = [
            "system",
            "query_type",
            "count",
            "p25",
            "median",
            "p75",
            "p95",
            "max",
        ]
        table_rows = [
            [
                row["system"],
                row["query_type"],
                row["count"],
                row["p25"],
                row["median"],
                row["p75"],
                row["p95"],
                row["max"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers, table_rows, title="Figure 1: relative slowdown at 95% load"
        )

    def tail_improvement(self, query_type: str, quantile: str = "p95") -> float:
        """PostgreSQL tail slowdown divided by ours (paper: >10x)."""
        ours = postgres = float("nan")
        for row in self.rows:
            if row["query_type"] != query_type:
                continue
            if row["system"] == "tuning":
                ours = float(row[quantile])
            elif row["system"] == "postgresql":
                postgres = float(row[quantile])
        return postgres / ours


def _distribution_row(system: str, query_type: str, records: list) -> Dict[str, object]:
    slowdowns = [r.slowdown for r in records]
    return {
        "system": system,
        "query_type": query_type,
        "count": len(records),
        "p25": percentile(slowdowns, 25.0),
        "median": percentile(slowdowns, 50.0),
        "p75": percentile(slowdowns, 75.0),
        "p95": percentile(slowdowns, 95.0),
        "max": max(slowdowns) if slowdowns else float("nan"),
    }


def _postgres_isolated_latencies(queries, config: ExperimentConfig) -> Dict[str, float]:
    """Isolated latency of each query inside the PostgreSQL model."""
    model = OsSchedulerModel(POSTGRES_LIKE, n_cores=config.n_workers)
    bases: Dict[str, float] = {}
    for query in queries:
        key = query_key(query.name, query.scale_factor)
        if key in bases:
            continue
        result = model.run([(0.0, query)])
        bases[key] = result.records[0].latency
    return bases


def run(config: ExperimentConfig = None) -> Figure1Result:
    """Execute the Figure 1 experiment."""
    config = config or ExperimentConfig.quick()
    mix = config.mix()
    rows: List[Dict[str, object]] = []

    # --- our scheduler at 95% of its maximum sustainable load -------
    # For the task-based scheduler, load 1.0 in the §5.2 sense (arrival
    # rate saturating the machine) is its sustainable maximum.
    bases = measure_isolated_latencies(mix.queries, config)
    rate = arrival_rate_for_load(mix, 0.95, bases, n_workers=config.n_workers)
    workload = build_workload(mix, rate, config)
    result = run_policy("tuning", workload, config, max_time=config.duration)
    records = result.records.apply_bases(bases)
    short, long_ = split_by_scale_factor(records, config.sf_small, config.sf_large)
    rows.append(_distribution_row("tuning", "short", short))
    rows.append(_distribution_row("tuning", "long", long_))

    # --- PostgreSQL-like model at 95% of *its* sustainable load -----
    # PostgreSQL saturates long before the task-based engine does: its
    # maximum is anchored at its capacity rate (see figure9 for the
    # §5.4 anchoring discussion).  Slowdowns are still measured against
    # PostgreSQL's own isolated latencies.
    from repro.experiments.figure9 import calibrate_max_rate

    pg_bases = _postgres_isolated_latencies(mix.queries, config)
    pg_max_rate = calibrate_max_rate("postgresql", config, mix)
    # PostgreSQL latencies are seconds; give its (cheap) fluid model a
    # 20x longer window so congestion reliably builds near saturation.
    pg_config = config.with_options(duration=config.duration * 20.0)
    pg_workload = build_workload(mix, 0.95 * pg_max_rate, pg_config, salt=1)
    pg_collector = run_os_system(
        POSTGRES_LIKE, pg_workload, pg_config, max_time=pg_config.duration
    )
    rebased = pg_collector.apply_bases(pg_bases)
    short_pg, long_pg = split_by_scale_factor(rebased, config.sf_small, config.sf_large)
    rows.append(_distribution_row("postgresql", "short", short_pg))
    rows.append(_distribution_row("postgresql", "long", long_pg))
    return Figure1Result(rows=rows, config=config)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
