"""Figure 9 — cross-system comparison under increasing load (§5.4).

Four systems (self-tuning scheduler, legacy Umbra scheduler, a
MonetDB-like model, a PostgreSQL-like model) are compared on four
panels: geomean latency, mean relative slowdown, 95th-percentile
relative slowdown, and queries per second, at loads 0.7-0.96.

Methodology notes from the paper, all reproduced here:

* load is anchored per system at its *oversubscription point* — the
  arrival rate at which the workload's mean slowdown exceeds 50 defines
  load 1.0;
* slowdown is measured against the **single-threaded** base latency
  within each system, so values below 1.0 are possible at moderate load;
* queries are *not* pre-compiled in the Umbra-based systems: a
  non-parallel code-generation pipeline precedes every query, which is
  why short queries show higher relative slowdown at low load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.os_scheduler import OsSystemProfile
from repro.core.registry import OS_SYSTEMS
from repro.experiments.common import (
    ExperimentConfig,
    build_workload,
    os_single_thread_latencies,
    run_os_system,
    run_policy,
    single_thread_latencies,
    split_by_scale_factor,
)
from repro.experiments.parallel import SweepCell, run_cells
from repro.metrics.latency import LatencyCollector
from repro.metrics.report import format_table
from repro.metrics.slowdown import slowdown_summary
from repro.workloads.load import find_oversubscription_rate
from repro.workloads.mixes import QueryMix

DEFAULT_SYSTEMS = ("tuning", "umbra", "monetdb", "postgresql")
DEFAULT_LOADS = (0.7, 0.8, 0.9, 0.96)
#: Default code-generation time per query in the Umbra-based systems.
DEFAULT_COMPILE_SECONDS = 0.012

#: The shared registry entry for OS-scheduled systems (single source of
#: truth, also consumed by the parallel sweep machinery).
_OS_PROFILES: Dict[str, OsSystemProfile] = OS_SYSTEMS


def _system_bases(system: str, mix: QueryMix) -> Dict[str, float]:
    """Single-threaded base latencies inside one system."""
    if system in _OS_PROFILES:
        return os_single_thread_latencies(mix.queries, _OS_PROFILES[system])
    return single_thread_latencies(mix.queries)


#: OS-scheduled systems run 20x longer windows than the task-based
#: simulations: their base latencies are seconds (lower base speed, less
#: parallelism), so steady state needs longer runs — and their fluid
#: model is cheap enough to afford them.
OS_DURATION_FACTOR = 20.0


def _make_runner(
    system: str, config: ExperimentConfig, mix: QueryMix
) -> Callable[[float, float, int], LatencyCollector]:
    """A function running ``system`` at a given rate for a duration."""
    bases = _system_bases(system, mix)

    def runner(rate: float, duration: float, salt: int) -> LatencyCollector:
        if system in _OS_PROFILES:
            duration = duration * OS_DURATION_FACTOR
            run_config = config.with_options(duration=duration)
            workload = build_workload(mix, rate, run_config, salt=salt)
            collector = run_os_system(
                _OS_PROFILES[system], workload, run_config, max_time=duration
            )
        else:
            run_config = config.with_options(duration=duration)
            workload = build_workload(mix, rate, run_config, salt=salt)
            result = run_policy(system, workload, run_config, max_time=duration)
            collector = result.records
        return collector.apply_bases(bases)

    return runner


def calibrate_max_rate(
    system: str,
    config: ExperimentConfig,
    mix: QueryMix,
) -> float:
    """The system's maximum sustainable arrival rate (defines load 1.0).

    The paper anchors load 1.0 empirically at the point where the mean
    slowdown of a 20-30 minute run exceeds 50.  That proxy needs runs
    much longer than the quick preset can afford (slowdowns are censored
    by the window length), so we anchor at the equivalent *capacity
    rate* instead: the arrival rate at which the offered CPU work equals
    the machine's capacity within that system,

        lambda_max = n_cores / E[single-threaded work per query].

    Beyond this rate queues grow without bound, which is exactly the
    regime the paper's empirical threshold detects.  For paper-scale
    offline runs, :func:`calibrate_max_rate_empirical` performs the
    bisection on measured mean slowdowns instead.
    """
    probabilities = mix.weights
    profile = _OS_PROFILES.get(system)
    mean_work = 0.0
    for (query, _), p in zip(mix.entries, probabilities):
        if profile is not None:
            # OS systems waste cycles on intra-query parallelization;
            # anchor at the CPU work they actually consume.
            work = profile.effective_work(query)
        else:
            work = query.total_work_seconds
        mean_work += float(p) * work
    return config.n_workers / mean_work


def calibrate_max_rate_empirical(
    system: str,
    config: ExperimentConfig,
    mix: QueryMix,
    threshold: float = 50.0,
) -> float:
    """§5.4's empirical anchoring: mean slowdown crosses ``threshold``.

    Requires run durations large relative to ``threshold *`` the longest
    base latency, i.e. the paper's 20-30 minute runs — use with
    :meth:`ExperimentConfig.paper` or longer.
    """
    runner = _make_runner(system, config, mix)
    calibration_duration = max(5.0, config.duration / 3.0)

    def mean_slowdown(rate: float) -> float:
        collector = runner(rate, calibration_duration, salt=97)
        records = collector.records
        if not records:
            return float(threshold * 4)
        slowdowns = sorted(r.slowdown for r in records)
        return sum(slowdowns) / len(slowdowns)

    initial = calibrate_max_rate(system, config, mix)
    return find_oversubscription_rate(
        mean_slowdown, initial_rate=initial, threshold=threshold
    )


@dataclass
class Figure9Result:
    """The four panels of Figure 9 as rows."""

    rows: List[Dict[str, object]]
    max_rates: Dict[str, float]
    config: ExperimentConfig

    def render(self) -> str:
        headers = [
            "system",
            "load",
            "sf",
            "count",
            "geomean_latency_ms",
            "mean_slowdown",
            "p95_slowdown",
            "qps",
        ]
        table_rows = [
            [
                row["system"],
                row["load"],
                row["sf"],
                row["count"],
                row["geomean_ms"],
                row["mean_slowdown"],
                row["p95_slowdown"],
                row["qps"],
            ]
            for row in self.rows
        ]
        rates = ", ".join(f"{k}: {v:.1f}/s" for k, v in self.max_rates.items())
        table = format_table(
            headers, table_rows, title="Figure 9: cross-system comparison"
        )
        return f"{table}\ncalibrated max rates ({{load=1.0}}): {rates}"

    def metric(self, system: str, load: float, sf: float, key: str) -> float:
        """One cell of one panel."""
        for row in self.rows:
            if (
                row["system"] == system
                and abs(float(row["load"]) - load) < 1e-9
                and row["sf"] == sf
            ):
                return float(row[key])
        return float("nan")


def run_systems_at_loads(
    config: ExperimentConfig,
    systems: Sequence[str],
    loads: Sequence[float],
    max_rates: Optional[Dict[str, float]] = None,
    jobs=1,
) -> Figure9Result:
    """Shared engine for Figures 9 and 11.

    ``jobs > 1`` fans cells out over the shared warm pool (reused from
    any earlier sweep of this process); ``jobs="auto"`` lets the cost
    heuristic decide.  The pool's longest-cell-first dispatch matters
    here: OS-model cells run 20x longer virtual windows than the
    task-based cells, so they start first instead of straggling.
    """
    mix = config.mix()
    if max_rates is None:
        max_rates = {
            system: calibrate_max_rate(system, config, mix) for system in systems
        }
    cells = []
    for system in systems:
        effective_duration = config.duration
        if system in _OS_PROFILES:
            effective_duration *= OS_DURATION_FACTOR
        for load_index, load in enumerate(loads):
            cells.append(
                SweepCell(
                    system=system,
                    rate=load * max_rates[system],
                    salt=load_index,
                    config=config.with_options(duration=effective_duration),
                    kind="os" if system in _OS_PROFILES else "policy",
                    max_time=effective_duration,
                )
            )
    outcomes = run_cells(cells, jobs=jobs)
    bases_by_system = {system: _system_bases(system, mix) for system in systems}
    rows: List[Dict[str, object]] = []
    for cell, outcome in zip(cells, outcomes):
        system = cell.system
        load = loads[cell.salt]
        effective_duration = cell.config.duration
        collector = outcome.records.apply_bases(bases_by_system[system])
        qps = collector.queries_per_second(effective_duration)
        short, long_ = split_by_scale_factor(
            collector, config.sf_small, config.sf_large
        )
        for sf, group in ((config.sf_small, short), (config.sf_large, long_)):
            summary = slowdown_summary(group)
            rows.append(
                {
                    "system": system,
                    "load": load,
                    "sf": sf,
                    "count": summary["count"],
                    "geomean_ms": summary["geomean_latency"] * 1000.0,
                    "mean_slowdown": summary["mean_slowdown"],
                    "p95_slowdown": summary["p95_slowdown"],
                    "max_slowdown": summary["max_slowdown"],
                    "qps": qps,
                }
            )
    return Figure9Result(rows=rows, max_rates=dict(max_rates), config=config)


def run(
    config: ExperimentConfig = None,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    loads: Sequence[float] = DEFAULT_LOADS,
    jobs=1,
) -> Figure9Result:
    """Execute the Figure 9 sweep."""
    config = config or ExperimentConfig.quick().with_options(
        compile_seconds=DEFAULT_COMPILE_SECONDS
    )
    return run_systems_at_loads(config, systems, loads, jobs=jobs)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(run().render())
