"""Parallel experiment sweeps over (system, load, seed) cells.

Every figure of the evaluation is a sweep: the same simulation run for a
grid of schedulers and arrival rates.  The runs are completely
independent — each rebuilds its workload from the experiment seed — so
they parallelize trivially across processes.  This module provides the
shared fan-out machinery:

* a :class:`SweepCell` describes one run (system, rate, salt, config)
  with enough information to rebuild it from scratch in a worker
  process;
* :func:`run_cell` executes one cell and returns a picklable
  :class:`CellOutcome`;
* :func:`run_cells` runs a list of cells either sequentially or on the
  shared **warm sweep pool** of :mod:`repro.experiments.pool`,
  preserving input order.

``run_cells`` never constructs a cold executor per call: pooled runs go
through one long-lived pool of pre-initialized workers that is reused
across every sweep of the process (figure7, then figure9, then the
ablations all hit the same warm workers).  ``jobs`` may be ``"auto"``
(or ``0``/``None``), in which case a cost heuristic picks between the
sequential loop and the pool — small grids that cannot amortize pool
startup and IPC stay sequential.

Determinism: a cell's workload is generated from
``RngFactory(config.seed).fork(salt)`` and the simulation itself is a
pure function of (scheduler, workload, seed), so a cell produces
bit-identical latency records no matter which process runs it or in
which order.  ``run_cells(cells, jobs=N)`` therefore returns exactly the
outcomes of the sequential loop (guarded by
``tests/experiments/test_parallel.py`` and
``tests/experiments/test_pool.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.os_scheduler import OsSystemProfile
from repro.core.registry import OS_SYSTEMS
from repro.experiments.common import (
    ExperimentConfig,
    build_workload,
    run_os_system,
    run_policy,
)
from repro.metrics.latency import LatencyCollector

#: OS-modelled systems runnable as cells — the shared registry entry
#: (also used by figure9), kept under the historical module-level name.
OS_PROFILES: Dict[str, OsSystemProfile] = OS_SYSTEMS


@dataclass(frozen=True)
class SweepCell:
    """One simulation run of a sweep, rebuildable in a worker process.

    ``config.duration`` must already be the *effective* run duration
    (drivers that stretch OS-model runs bake the factor in before
    building cells).  ``kind`` selects the execution model: ``"policy"``
    runs a task-based scheduler through the simulator, ``"os"`` runs the
    fluid model of an OS-scheduled system.
    """

    system: str
    rate: float
    salt: int
    config: ExperimentConfig
    kind: str = "policy"  # "policy" | "os"
    max_time: Optional[float] = None
    scheduler_overrides: dict = field(default_factory=dict)

    @property
    def workload_key(self) -> tuple:
        """Cells with equal keys build the identical workload instance.

        A workload is a pure function of (config, rate, salt) — the mix
        is derived from the config — so e.g. the four schedulers of one
        figure7 load level share one key and a pooled worker builds the
        workload once for all of them.
        """
        return (self.config, self.rate, self.salt)


@dataclass
class CellOutcome:
    """The picklable result of one cell.

    Raw latency records (base latencies are applied by the driver, which
    owns them); the simulator counters are carried along for overhead
    reports and only populated for ``"policy"`` cells.
    """

    records: LatencyCollector
    tasks_executed: int = 0
    events_processed: int = 0
    total_overhead_percent: float = 0.0
    end_time: float = 0.0


def run_cell(cell: SweepCell, workload=None) -> CellOutcome:
    """Execute one sweep cell (module-level: picklable).

    ``workload`` may be the prebuilt workload for the cell's
    :attr:`~SweepCell.workload_key` (pooled workers pass their cached
    instance); by default it is rebuilt from the experiment seed.  Both
    paths are bit-identical because workload generation is pure.
    """
    config = cell.config
    if workload is None:
        workload = build_workload(config.mix(), cell.rate, config, salt=cell.salt)
    if cell.kind == "os":
        collector = run_os_system(
            OS_PROFILES[cell.system], workload, config, max_time=cell.max_time
        )
        return CellOutcome(records=collector, end_time=cell.max_time or 0.0)
    result = run_policy(
        cell.system,
        workload,
        config,
        max_time=cell.max_time,
        scheduler_overrides=cell.scheduler_overrides or None,
    )
    return CellOutcome(
        records=result.records,
        tasks_executed=result.tasks_executed,
        events_processed=result.events_processed,
        total_overhead_percent=result.total_overhead_percent,
        end_time=result.end_time,
    )


def run_cells(
    cells: List[SweepCell],
    jobs: Union[int, str, None] = 1,
    *,
    chunk_size: Optional[int] = None,
    dispatch: str = "cost",
    force_pool: bool = False,
) -> List[CellOutcome]:
    """Run every cell, in input order, optionally across processes.

    ``jobs <= 1`` runs the plain sequential loop (no pool, no pickling);
    larger values fan the cells out over the shared warm pool, and
    ``jobs="auto"`` lets the cost heuristic of
    :func:`repro.experiments.pool.resolve_jobs` decide.  Even an
    explicit ``jobs > 1`` falls back to the sequential loop when the
    grid is too cheap to amortize pool startup (pass ``force_pool=True``
    to override, e.g. in determinism tests).  All paths return
    bit-identical outcomes because each cell is self-contained.

    ``chunk_size`` bounds how many cells ride one IPC round trip
    (default: grid size / 4x worker count); ``dispatch`` is ``"cost"``
    (longest-cell-first, the default) or ``"input"``.  Neither affects
    results — outcomes always come back in input order.
    """
    from repro.experiments import pool as pool_mod

    effective = pool_mod.resolve_jobs(cells, jobs, force_pool=force_pool)
    if effective <= 1:
        return [run_cell(cell) for cell in cells]
    sweep_pool = pool_mod.get_pool(effective)
    return sweep_pool.run_cells(cells, chunk_size=chunk_size, dispatch=dispatch)
