"""Parallel experiment sweeps over (system, load, seed) cells.

Every figure of the evaluation is a sweep: the same simulation run for a
grid of schedulers and arrival rates.  The runs are completely
independent — each rebuilds its workload from the experiment seed — so
they parallelize trivially across processes.  This module provides the
shared fan-out machinery:

* a :class:`SweepCell` describes one run (system, rate, salt, config)
  with enough information to rebuild it from scratch in a worker
  process;
* :func:`run_cell` executes one cell and returns a picklable
  :class:`CellOutcome`;
* :func:`run_cells` runs a list of cells either sequentially (``jobs <=
  1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  preserving input order.

Determinism: a cell's workload is generated from
``RngFactory(config.seed).fork(salt)`` and the simulation itself is a
pure function of (scheduler, workload, seed), so a cell produces
bit-identical latency records no matter which process runs it or in
which order.  ``run_cells(cells, jobs=N)`` therefore returns exactly the
outcomes of the sequential loop (guarded by
``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.os_scheduler import OsSystemProfile
from repro.core.registry import OS_SYSTEMS
from repro.experiments.common import (
    ExperimentConfig,
    build_workload,
    run_os_system,
    run_policy,
)
from repro.metrics.latency import LatencyCollector

#: OS-modelled systems runnable as cells — the shared registry entry
#: (also used by figure9), kept under the historical module-level name.
OS_PROFILES: Dict[str, OsSystemProfile] = OS_SYSTEMS


@dataclass(frozen=True)
class SweepCell:
    """One simulation run of a sweep, rebuildable in a worker process.

    ``config.duration`` must already be the *effective* run duration
    (drivers that stretch OS-model runs bake the factor in before
    building cells).  ``kind`` selects the execution model: ``"policy"``
    runs a task-based scheduler through the simulator, ``"os"`` runs the
    fluid model of an OS-scheduled system.
    """

    system: str
    rate: float
    salt: int
    config: ExperimentConfig
    kind: str = "policy"  # "policy" | "os"
    max_time: Optional[float] = None
    scheduler_overrides: dict = field(default_factory=dict)


@dataclass
class CellOutcome:
    """The picklable result of one cell.

    Raw latency records (base latencies are applied by the driver, which
    owns them); the simulator counters are carried along for overhead
    reports and only populated for ``"policy"`` cells.
    """

    records: LatencyCollector
    tasks_executed: int = 0
    events_processed: int = 0
    total_overhead_percent: float = 0.0
    end_time: float = 0.0


def run_cell(cell: SweepCell) -> CellOutcome:
    """Execute one sweep cell from scratch (module-level: picklable)."""
    config = cell.config
    workload = build_workload(config.mix(), cell.rate, config, salt=cell.salt)
    if cell.kind == "os":
        collector = run_os_system(
            OS_PROFILES[cell.system], workload, config, max_time=cell.max_time
        )
        return CellOutcome(records=collector, end_time=cell.max_time or 0.0)
    result = run_policy(
        cell.system,
        workload,
        config,
        max_time=cell.max_time,
        scheduler_overrides=cell.scheduler_overrides or None,
    )
    return CellOutcome(
        records=result.records,
        tasks_executed=result.tasks_executed,
        events_processed=result.events_processed,
        total_overhead_percent=result.total_overhead_percent,
        end_time=result.end_time,
    )


def run_cells(cells: List[SweepCell], jobs: int = 1) -> List[CellOutcome]:
    """Run every cell, in input order, optionally across processes.

    ``jobs <= 1`` runs the plain sequential loop (no pool, no pickling);
    larger values fan the cells out over a process pool.  Both paths
    return bit-identical outcomes because each cell is self-contained.
    """
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves input order regardless of completion order.
        return list(pool.map(run_cell, cells))
