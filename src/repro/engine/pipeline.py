"""Pipelines and query plans for the mini engine.

An :class:`EnginePipeline` mirrors the paper's executable pipeline: a
source relation scanned morsel-wise, a chain of transforms, and a sink.
A :class:`QueryPlan` is the ordered list of pipelines with the same
semantics as a resource group: pipeline *i+1* may only start after
pipeline *i* finalized (e.g. probes after builds).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.engine.operators import Sink, Transform
from repro.engine.relation import Batch, Relation
from repro.errors import EngineError

#: A pipeline source: a relation, or a thunk producing one lazily (for
#: pipelines scanning the materialised output of an earlier pipeline).
SourceLike = Union[Relation, Callable[[], Relation]]


class EnginePipeline:
    """One executable pipeline with a morsel cursor."""

    def __init__(
        self,
        name: str,
        source: SourceLike,
        columns: Optional[Sequence[str]],
        transforms: List[Transform],
        sink: Sink,
        estimated_rows: Optional[int] = None,
    ) -> None:
        self.name = name
        self._source = source
        self._relation: Optional[Relation] = None
        self.columns = list(columns) if columns is not None else None
        self.transforms = transforms
        self.sink = sink
        self._estimated_rows = estimated_rows
        self.cursor = 0
        self.finalized = False
        #: Rows actually pushed through the pipeline (for calibration).
        self.rows_processed = 0

    # ------------------------------------------------------------------
    # Source resolution
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The source relation, resolved lazily for intermediate views."""
        if self._relation is None:
            source = self._source
            self._relation = source() if callable(source) else source
        return self._relation

    @property
    def total_rows(self) -> int:
        """Actual input cardinality (resolves the source)."""
        return self.relation.n_rows

    @property
    def estimated_rows(self) -> int:
        """Planner estimate of the input cardinality.

        Base-table pipelines know their size exactly; pipelines over
        intermediate views carry an upper-bound estimate so task sets
        can be sized before the view exists.
        """
        if self._estimated_rows is not None:
            return self._estimated_rows
        if self._relation is not None or not callable(self._source):
            return self.total_rows
        raise EngineError(
            f"pipeline {self.name!r} over a lazy source needs estimated_rows"
        )

    # ------------------------------------------------------------------
    # Morsel execution
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Whether every input row has been processed."""
        return self.cursor >= self.total_rows

    def run_morsel(self, rows: int) -> int:
        """Process up to ``rows`` input rows; return the actual count."""
        if self.finalized:
            raise EngineError(f"pipeline {self.name!r} already finalized")
        start = self.cursor
        stop = min(start + rows, self.total_rows)
        if stop <= start:
            return 0
        self.cursor = stop
        batch: Batch = self.relation.slice(start, stop, self.columns)
        for transform in self.transforms:
            batch = transform.apply(batch)
        self.sink.consume(batch)
        self.rows_processed += stop - start
        return stop - start

    def run_to_completion(self, morsel_rows: int = 65_536) -> None:
        """Drain the pipeline (single-threaded execution helper)."""
        while not self.exhausted:
            self.run_morsel(morsel_rows)
        self.finalize()

    def finalize(self) -> None:
        """Run the sink's finalization step (exactly once)."""
        if self.finalized:
            raise EngineError(f"pipeline {self.name!r} finalized twice")
        if not self.exhausted:
            # Defensive drain: if a scheduler sized the task set from an
            # over-optimistic estimate, process the remainder now so
            # query results stay correct.
            while not self.exhausted:
                self.run_morsel(65_536)
        self.sink.finalize()
        self.finalized = True


class QueryPlan:
    """Ordered pipelines plus access to the final result."""

    def __init__(
        self,
        name: str,
        pipelines: List[EnginePipeline],
        result_fn: Callable[[], object],
    ) -> None:
        if not pipelines:
            raise EngineError(f"plan {name!r} has no pipelines")
        self.name = name
        self.pipelines = pipelines
        self._result_fn = result_fn

    def execute(self, morsel_rows: int = 65_536) -> object:
        """Run all pipelines in order (single-threaded) and return the result."""
        for pipeline in self.pipelines:
            pipeline.run_to_completion(morsel_rows)
        return self.result()

    def result(self) -> object:
        """The query result (requires all pipelines finalized)."""
        for pipeline in self.pipelines:
            if not pipeline.finalized:
                raise EngineError(
                    f"plan {self.name!r}: pipeline {pipeline.name!r} not finalized"
                )
        return self._result_fn()

    def explain(self) -> str:
        """Human-readable plan: pipelines, operators and cardinalities.

        Mirrors the structure of Figure 2 in the paper: one block per
        pipeline (= task set) in execution order.
        """
        lines = [f"QueryPlan {self.name}"]
        for index, pipeline in enumerate(self.pipelines):
            try:
                rows = pipeline.estimated_rows
                rows_text = f"~{rows} rows"
            except EngineError:
                rows_text = "lazy source"
            lines.append(f"  Pipeline {index}: {pipeline.name} ({rows_text})")
            for transform in pipeline.transforms:
                lines.append(f"    -> {type(transform).__name__}")
            lines.append(f"    => {type(pipeline.sink).__name__}")
        return "\n".join(lines)


def materialized_relation(batch: Batch) -> Relation:
    """Wrap a collected batch as a relation for a follow-up pipeline."""
    if not batch:
        raise EngineError("cannot materialise an empty column set")
    columns = {name: np.asarray(array) for name, array in batch.items()}
    return Relation(columns)
