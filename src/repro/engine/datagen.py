"""TPC-H-style synthetic data generation.

The generator produces the eight TPC-H tables with the benchmark's
cardinality ratios (6M lineitem : 1.5M orders : ... per scale factor),
referentially consistent keys, and value distributions close enough to
dbgen for the standard predicates to have realistic selectivities
(shipdate ranges over ~7 years, discounts 0-10%, quantities 1-50, ...).

It is *not* a bit-compatible dbgen replacement — the paper's evaluation
only depends on cardinalities, join fan-outs and selectivities, all of
which are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.engine.relation import Relation
from repro.errors import EngineError

#: TPC-H base cardinalities at scale factor 1.
BASE_ROWS = {
    "lineitem": 6_000_000,
    "orders": 1_500_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "supplier": 10_000,
    "nation": 25,
    "region": 5,
}

RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
NATION_NAMES = [f"NATION_{i:02d}" for i in range(25)]
REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: Dates are integer days since 1992-01-01; the benchmark window is
#: 1992-01-01 .. 1998-12-31 (~2557 days).
DATE_EPOCH_DAYS = 2_557


@dataclass
class TpchDatabase:
    """The generated tables, addressable by name."""

    scale_factor: float
    tables: Dict[str, Relation]
    #: Generation seed (part of the identity key used by the
    #: calibration cache; databases built outside generate_tpch keep 0).
    seed: int = 0
    #: True for databases produced by :func:`generate_tpch`: such a
    #: database is a pure function of ``(scale_factor, seed)`` and can
    #: be *regenerated* in another process instead of being pickled
    #: across (the process backend relies on this).
    generated: bool = False

    def table(self, name: str) -> Relation:
        """Look up one table."""
        try:
            return self.tables[name]
        except KeyError:
            raise EngineError(
                f"unknown table {name!r}; have {sorted(self.tables)}"
            ) from None

    def row_counts(self) -> Dict[str, int]:
        """Rows per table (useful for tests and calibration)."""
        return {name: rel.n_rows for name, rel in self.tables.items()}


def _rows(table: str, scale_factor: float) -> int:
    base = BASE_ROWS[table]
    if table in ("nation", "region"):
        return base
    return max(1, int(round(base * scale_factor)))


def generate_tpch(scale_factor: float = 0.01, seed: int = 0) -> TpchDatabase:
    """Generate a database at ``scale_factor`` (default: SF 0.01, ~60k lineitems)."""
    if scale_factor <= 0.0:
        raise EngineError("scale factor must be positive")
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 7])))
    tables: Dict[str, Relation] = {}

    n_supplier = _rows("supplier", scale_factor)
    n_customer = _rows("customer", scale_factor)
    n_part = _rows("part", scale_factor)
    n_orders = _rows("orders", scale_factor)
    n_lineitem = _rows("lineitem", scale_factor)
    n_partsupp = _rows("partsupp", scale_factor)

    # --- region / nation ------------------------------------------------
    tables["region"] = Relation(
        {
            "r_regionkey": np.arange(5, dtype=np.int64),
            "r_name": np.arange(5, dtype=np.int32),
        },
        dictionaries={"r_name": list(REGION_NAMES)},
    )
    tables["nation"] = Relation(
        {
            "n_nationkey": np.arange(25, dtype=np.int64),
            "n_regionkey": (np.arange(25) % 5).astype(np.int64),
            "n_name": np.arange(25, dtype=np.int32),
        },
        dictionaries={"n_name": list(NATION_NAMES)},
    )

    # --- supplier ---------------------------------------------------------
    tables["supplier"] = Relation(
        {
            "s_suppkey": np.arange(n_supplier, dtype=np.int64),
            "s_nationkey": rng.integers(0, 25, n_supplier, dtype=np.int64),
            "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supplier), 2),
        }
    )

    # --- customer ---------------------------------------------------------
    tables["customer"] = Relation(
        {
            "c_custkey": np.arange(n_customer, dtype=np.int64),
            "c_nationkey": rng.integers(0, 25, n_customer, dtype=np.int64),
            "c_mktsegment": rng.integers(
                0, len(MARKET_SEGMENTS), n_customer, dtype=np.int32
            ),
            "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_customer), 2),
        },
        dictionaries={"c_mktsegment": list(MARKET_SEGMENTS)},
    )

    # --- part / partsupp ----------------------------------------------
    tables["part"] = Relation(
        {
            "p_partkey": np.arange(n_part, dtype=np.int64),
            "p_size": rng.integers(1, 51, n_part, dtype=np.int64),
            "p_retailprice": np.round(rng.uniform(900.0, 2000.0, n_part), 2),
            "p_brand": rng.integers(0, 25, n_part, dtype=np.int32),
        },
        dictionaries={"p_brand": [f"Brand#{i//5 + 1}{i%5 + 1}" for i in range(25)]},
    )
    tables["partsupp"] = Relation(
        {
            "ps_partkey": rng.integers(0, n_part, n_partsupp, dtype=np.int64),
            "ps_suppkey": rng.integers(0, n_supplier, n_partsupp, dtype=np.int64),
            "ps_availqty": rng.integers(1, 10_000, n_partsupp, dtype=np.int64),
            "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n_partsupp), 2),
        }
    )

    # --- orders ---------------------------------------------------------
    o_orderdate = rng.integers(0, DATE_EPOCH_DAYS - 151, n_orders, dtype=np.int64)
    # Like dbgen, every third customer never places an order (custkey
    # % 3 == 0 is skipped) — the population Q13's zero bucket and Q22's
    # anti-join exist to find.
    ordering_customers = np.arange(n_customer, dtype=np.int64)
    ordering_customers = ordering_customers[ordering_customers % 3 != 0]
    if len(ordering_customers) == 0:
        ordering_customers = np.arange(n_customer, dtype=np.int64)
    o_custkey = ordering_customers[
        rng.integers(0, len(ordering_customers), n_orders)
    ]
    tables["orders"] = Relation(
        {
            "o_orderkey": np.arange(n_orders, dtype=np.int64),
            "o_custkey": o_custkey,
            "o_orderdate": o_orderdate,
            "o_totalprice": np.round(rng.uniform(1000.0, 500_000.0, n_orders), 2),
            "o_orderpriority": rng.integers(
                0, len(ORDER_PRIORITIES), n_orders, dtype=np.int32
            ),
        },
        dictionaries={"o_orderpriority": list(ORDER_PRIORITIES)},
    )

    # --- lineitem -------------------------------------------------------
    l_orderkey = rng.integers(0, n_orders, n_lineitem, dtype=np.int64)
    order_dates = o_orderdate[l_orderkey]
    ship_delay = rng.integers(1, 122, n_lineitem, dtype=np.int64)
    l_shipdate = order_dates + ship_delay
    l_commitdate = order_dates + rng.integers(30, 91, n_lineitem, dtype=np.int64)
    l_receiptdate = l_shipdate + rng.integers(1, 31, n_lineitem, dtype=np.int64)
    l_quantity = rng.integers(1, 51, n_lineitem).astype(np.float64)
    l_extendedprice = np.round(l_quantity * rng.uniform(900.0, 2000.0, n_lineitem), 2)
    tables["lineitem"] = Relation(
        {
            "l_orderkey": l_orderkey,
            "l_partkey": rng.integers(0, n_part, n_lineitem, dtype=np.int64),
            "l_suppkey": rng.integers(0, n_supplier, n_lineitem, dtype=np.int64),
            "l_quantity": l_quantity,
            "l_extendedprice": l_extendedprice,
            "l_discount": np.round(rng.uniform(0.0, 0.10, n_lineitem), 2),
            "l_tax": np.round(rng.uniform(0.0, 0.08, n_lineitem), 2),
            "l_shipdate": l_shipdate,
            "l_commitdate": l_commitdate,
            "l_receiptdate": l_receiptdate,
            "l_returnflag": rng.integers(0, len(RETURN_FLAGS), n_lineitem, dtype=np.int32),
            "l_linestatus": rng.integers(
                0, len(LINE_STATUSES), n_lineitem, dtype=np.int32
            ),
            "l_shipmode": rng.integers(0, len(SHIP_MODES), n_lineitem, dtype=np.int32),
        },
        dictionaries={
            "l_returnflag": list(RETURN_FLAGS),
            "l_linestatus": list(LINE_STATUSES),
            "l_shipmode": list(SHIP_MODES),
        },
    )
    return TpchDatabase(
        scale_factor=scale_factor, tables=tables, seed=seed, generated=True
    )


def cardinality_ratios(db: TpchDatabase) -> Dict[str, float]:
    """Rows per table relative to orders (validated in tests)."""
    orders = db.table("orders").n_rows
    return {name: rel.n_rows / orders for name, rel in db.tables.items()}
