"""Hand-built engine plans for TPC-H-shaped queries.

Ten queries cover the plan shapes the paper's figures rely on:

* **Q1** — one heavy scan+aggregate pipeline (pricing summary report);
* **Q3** — build/build/probe chain with a top-k (shipping priority);
* **Q4** — existence semi-join of late lineitems into orders;
* **Q6** — a single tight filter+sum scan (forecast revenue change);
* **Q12** — orders build probed by late lineitems, priority split;
* **Q13** — the customer-order distribution with its expensive
  aggregation pipeline (one of the two Figure 5 queries);
* **Q14** — part build probed by a lineitem month (promotion effect);
* **Q18** — a large group-by feeding a having-filter and a semi-join
  (large-volume customers);
* **Q19** — disjunctive predicates over a part probe (discounted revenue);
* **Q22** — wealthy idle customers via an anti-join against orders.

Dates are integer days since 1992-01-01 (see
:mod:`repro.engine.datagen`); the predicates below use the same windows
as the original queries, which yields comparable selectivities.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.engine.datagen import TpchDatabase
from repro.engine.expressions import And, Col, Const, Or
from repro.engine.operators import (
    AntiJoinProbe,
    CollectSink,
    Filter,
    HashAggregateSink,
    HashJoinBuildSink,
    HashJoinProbe,
    LazyJoinTable,
    ScalarAggregateSink,
    SemiJoinProbe,
    TopKSink,
)
from repro.engine.pipeline import EnginePipeline, QueryPlan, materialized_relation
from repro.errors import EngineError

#: Names of the queries with real engine plans.  ``QS`` is not a TPC-H
#: query: it is the streaming scan — the one plan whose final sink
#: emits result rows per morsel (see :func:`_qs`).
ENGINE_QUERIES = (
    "Q1", "Q3", "Q4", "Q6", "Q12", "Q13", "Q14", "Q18", "Q19", "Q22", "QS",
)


def _q1(db: TpchDatabase) -> QueryPlan:
    """Pricing summary report: scan + group by (returnflag, linestatus)."""
    lineitem = db.table("lineitem")
    revenue = Col("l_extendedprice") * (Const(1.0) - Col("l_discount"))
    charge = revenue * (Const(1.0) + Col("l_tax"))
    sink = HashAggregateSink(
        group_columns=["l_returnflag", "l_linestatus"],
        sums={
            "sum_qty": Col("l_quantity"),
            "sum_base_price": Col("l_extendedprice"),
            "sum_disc_price": revenue,
            "sum_charge": charge,
        },
        avgs={
            "avg_qty": Col("l_quantity"),
            "avg_price": Col("l_extendedprice"),
            "avg_disc": Col("l_discount"),
        },
        count_alias="count_order",
    )
    scan = EnginePipeline(
        name="scan-lineitem-aggregate",
        source=lineitem,
        columns=[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_shipdate",
        ],
        transforms=[Filter(Col("l_shipdate") <= 2_467)],
        sink=sink,
    )
    return QueryPlan("Q1", [scan], result_fn=sink.result_rows)


def _q3(db: TpchDatabase) -> QueryPlan:
    """Shipping priority: customer/orders builds, lineitem probe, top-k."""
    cutoff = 1_600  # ~1996-05-18
    customer_table = LazyJoinTable()
    orders_table = LazyJoinTable()
    customer = db.table("customer")
    orders = db.table("orders")
    lineitem = db.table("lineitem")

    build_customer = EnginePipeline(
        name="build-customer",
        source=customer,
        columns=["c_custkey", "c_mktsegment"],
        transforms=[
            Filter(Col("c_mktsegment").equals(customer.encode_value("c_mktsegment", "BUILDING")))
        ],
        sink=HashJoinBuildSink("c_custkey", [], customer_table),
    )
    build_orders = EnginePipeline(
        name="build-orders",
        source=orders,
        columns=["o_orderkey", "o_custkey", "o_orderdate"],
        transforms=[
            Filter(Col("o_orderdate") < cutoff),
            SemiJoinProbe(customer_table, "o_custkey"),
        ],
        sink=HashJoinBuildSink("o_orderkey", ["o_orderdate"], orders_table),
    )
    revenue = Col("l_extendedprice") * (Const(1.0) - Col("l_discount"))
    agg = HashAggregateSink(
        group_columns=["l_orderkey"],
        sums={"revenue": revenue},
    )
    probe_lineitem = EnginePipeline(
        name="probe-lineitem-aggregate",
        source=lineitem,
        columns=["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
        transforms=[
            Filter(Col("l_shipdate") > cutoff),
            SemiJoinProbe(orders_table, "l_orderkey"),
        ],
        sink=agg,
    )

    def result() -> List[tuple]:
        rows = agg.result_rows()  # (orderkey, revenue)
        return sorted(rows, key=lambda row: -row[1])[:10]

    return QueryPlan("Q3", [build_customer, build_orders, probe_lineitem], result)


def _q6(db: TpchDatabase) -> QueryPlan:
    """Forecast revenue change: one filter+sum scan."""
    lineitem = db.table("lineitem")
    sink = ScalarAggregateSink(
        sums={"revenue": Col("l_extendedprice") * Col("l_discount")}
    )
    scan = EnginePipeline(
        name="scan-lineitem-filter-sum",
        source=lineitem,
        columns=["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
        transforms=[
            Filter(
                And(
                    Col("l_shipdate").between(1_096, 1_460),
                    Col("l_discount").between(0.05, 0.07),
                    Col("l_quantity") < 24,
                )
            )
        ],
        sink=sink,
    )
    return QueryPlan("Q6", [scan], result_fn=lambda: sink.totals["revenue"])


def _q13(db: TpchDatabase) -> QueryPlan:
    """Customer distribution: orders per customer, then a histogram."""
    customer = db.table("customer")
    orders = db.table("orders")
    customer_table = LazyJoinTable()

    build_customer = EnginePipeline(
        name="build-customer",
        source=customer,
        columns=["c_custkey"],
        transforms=[],
        sink=HashJoinBuildSink("c_custkey", [], customer_table),
    )
    per_customer = HashAggregateSink(
        group_columns=["o_custkey"],
        sums={},
        count_alias="order_count",
    )
    probe_orders = EnginePipeline(
        name="probe-orders-outer",
        source=orders,
        columns=["o_custkey"],
        transforms=[SemiJoinProbe(customer_table, "o_custkey")],
        sink=per_customer,
    )

    def result() -> List[tuple]:
        # Histogram: (orders per customer, number of customers); the
        # customers with zero orders come from the difference against
        # the customer cardinality (the LEFT OUTER part of Q13).
        counts: Dict[int, int] = {}
        for _custkey, order_count in per_customer.result_rows():
            counts[order_count] = counts.get(order_count, 0) + 1
        n_with_orders = sum(counts.values())
        zero = customer.n_rows - n_with_orders
        if zero > 0:
            counts[0] = counts.get(0, 0) + zero
        return sorted(counts.items(), key=lambda item: (-item[1], -item[0]))

    return QueryPlan("Q13", [build_customer, probe_orders], result)


def _q18(db: TpchDatabase, quantity_threshold: float = 190.0) -> QueryPlan:
    """Large-volume customers: group lineitem, having-filter, semi-join."""
    lineitem = db.table("lineitem")
    orders = db.table("orders")
    group_qty = HashAggregateSink(
        group_columns=["l_orderkey"],
        sums={"sum_qty": Col("l_quantity")},
    )
    group_lineitem = EnginePipeline(
        name="group-lineitem-quantities",
        source=lineitem,
        columns=["l_orderkey", "l_quantity"],
        transforms=[],
        sink=group_qty,
    )

    big_orders = LazyJoinTable()

    def grouped_relation():
        rows = group_qty.result_rows()  # (orderkey, sum_qty)
        keys = np.array([row[0] for row in rows], dtype=np.int64)
        sums = np.array([row[1] for row in rows], dtype=np.float64)
        return materialized_relation({"g_orderkey": keys, "g_sum_qty": sums})

    build_big_orders = EnginePipeline(
        name="build-orders-probe",
        source=grouped_relation,
        columns=["g_orderkey", "g_sum_qty"],
        transforms=[Filter(Col("g_sum_qty") > quantity_threshold)],
        sink=HashJoinBuildSink("g_orderkey", ["g_sum_qty"], big_orders),
        estimated_rows=orders.n_rows,
    )
    topk = TopKSink(
        "o_totalprice", 100, ["o_orderkey", "o_totalprice", "o_custkey", "g_sum_qty"]
    )
    probe_orders = EnginePipeline(
        name="probe-lineitem-join",
        source=orders,
        columns=["o_orderkey", "o_totalprice", "o_custkey"],
        transforms=[
            HashJoinProbe(big_orders, "o_orderkey", ["g_sum_qty"])
        ],
        sink=topk,
    )
    return QueryPlan(
        "Q18", [group_lineitem, build_big_orders, probe_orders], topk.result_rows
    )


def _q4(db: TpchDatabase) -> QueryPlan:
    """Order priority checking: late lineitems semi-join into orders.

    Pipeline 1 builds the set of orders having at least one lineitem
    with ``l_commitdate < l_receiptdate``; pipeline 2 counts qualifying
    orders per priority within a quarter.
    """
    lineitem = db.table("lineitem")
    orders = db.table("orders")
    late_orders = LazyJoinTable()

    collect_late = CollectSink(["l_orderkey"])
    find_late = EnginePipeline(
        name="build-lineitem-semijoin",
        source=lineitem,
        columns=["l_orderkey", "l_commitdate", "l_receiptdate"],
        transforms=[Filter(Col("l_commitdate") < Col("l_receiptdate"))],
        sink=collect_late,
    )

    def late_relation():
        keys = np.unique(np.asarray(collect_late.result["l_orderkey"]))
        return materialized_relation({"lo_orderkey": keys})

    build_late = EnginePipeline(
        name="build-late-orders",
        source=late_relation,
        columns=["lo_orderkey"],
        transforms=[],
        sink=HashJoinBuildSink("lo_orderkey", [], late_orders),
        estimated_rows=orders.n_rows,
    )
    agg = HashAggregateSink(
        group_columns=["o_orderpriority"], sums={}, count_alias="order_count"
    )
    probe_orders = EnginePipeline(
        name="probe-orders-aggregate",
        source=orders,
        columns=["o_orderkey", "o_orderdate", "o_orderpriority"],
        transforms=[
            Filter(Col("o_orderdate").between(800, 891)),
            SemiJoinProbe(late_orders, "o_orderkey"),
        ],
        sink=agg,
    )
    return QueryPlan("Q4", [find_late, build_late, probe_orders], agg.result_rows)


def _q14(db: TpchDatabase) -> QueryPlan:
    """Promotion effect: part build probed by a shipdate-month of lineitem.

    Our part table has no p_type column, so the "promo" class is modelled
    as a brand subset — the plan shape (build + probe + two conditional
    sums) is what matters for scheduling.
    """
    part = db.table("part")
    lineitem = db.table("lineitem")
    parts_table = LazyJoinTable()
    build_part = EnginePipeline(
        name="build-part",
        source=part,
        columns=["p_partkey", "p_brand"],
        transforms=[],
        sink=HashJoinBuildSink("p_partkey", ["p_brand"], parts_table),
    )
    revenue = Col("l_extendedprice") * (Const(1.0) - Col("l_discount"))
    total = ScalarAggregateSink(sums={"revenue": revenue})
    promo = ScalarAggregateSink(sums={"revenue": revenue})

    class _SplitSink(ScalarAggregateSink):
        """Feeds total and promo sums from one probe pass."""

        def __init__(self):
            super().__init__(sums={})

        def consume(self, batch):
            total.consume(batch)
            mask = np.asarray(batch["p_brand"]) < 5  # "PROMO" brands
            promo.consume({k: v[mask] for k, v in batch.items()})

    probe = EnginePipeline(
        name="probe-lineitem",
        source=lineitem,
        columns=["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"],
        transforms=[
            Filter(Col("l_shipdate").between(1_000, 1_030)),
            HashJoinProbe(parts_table, "l_partkey", ["p_brand"]),
        ],
        sink=_SplitSink(),
    )

    def result() -> float:
        if total.totals["revenue"] == 0.0:
            return 0.0
        return 100.0 * promo.totals["revenue"] / total.totals["revenue"]

    return QueryPlan("Q14", [build_part, probe], result)


def _q19(db: TpchDatabase) -> QueryPlan:
    """Discounted revenue: disjunctive brand/quantity predicates."""
    part = db.table("part")
    lineitem = db.table("lineitem")
    parts_table = LazyJoinTable()
    build_part = EnginePipeline(
        name="build-part-brands",
        source=part,
        columns=["p_partkey", "p_brand"],
        transforms=[Filter(Col("p_brand").isin([1, 7, 13]))],
        sink=HashJoinBuildSink("p_partkey", ["p_brand"], parts_table),
    )
    revenue = Col("l_extendedprice") * (Const(1.0) - Col("l_discount"))
    agg = ScalarAggregateSink(sums={"revenue": revenue})
    probe = EnginePipeline(
        name="probe-lineitem-disjunction",
        source=lineitem,
        columns=["l_partkey", "l_quantity", "l_extendedprice", "l_discount"],
        transforms=[
            Filter(
                Or(
                    Col("l_quantity").between(1, 11),
                    Col("l_quantity").between(10, 20),
                    Col("l_quantity").between(20, 30),
                )
            ),
            HashJoinProbe(parts_table, "l_partkey", []),
        ],
        sink=agg,
    )
    return QueryPlan("Q19", [build_part, probe], lambda: agg.totals["revenue"])


def _q12(db: TpchDatabase) -> QueryPlan:
    """Shipping modes and order priority: orders build, lineitem probe.

    Counts urgent/non-urgent orders per ship mode among late-but-shipped
    lineitems in a one-year window.
    """
    orders = db.table("orders")
    lineitem = db.table("lineitem")
    orders_table = LazyJoinTable()
    build_orders = EnginePipeline(
        name="build-orders",
        source=orders,
        columns=["o_orderkey", "o_orderpriority"],
        transforms=[],
        sink=HashJoinBuildSink("o_orderkey", ["o_orderpriority"], orders_table),
    )
    urgent = HashAggregateSink(
        group_columns=["l_shipmode"],
        sums={},
        count_alias="n",
    )
    non_urgent = HashAggregateSink(
        group_columns=["l_shipmode"],
        sums={},
        count_alias="n",
    )

    class _PrioritySplit(ScalarAggregateSink):
        """Routes probed rows into urgent / non-urgent group counts."""

        def __init__(self):
            super().__init__(sums={})

        def consume(self, batch):
            priorities = np.asarray(batch["o_orderpriority"])
            mask = priorities < 2  # "1-URGENT" / "2-HIGH"
            urgent.consume({k: v[mask] for k, v in batch.items()})
            non_urgent.consume({k: v[~mask] for k, v in batch.items()})

    probe = EnginePipeline(
        name="probe-lineitem-aggregate",
        source=lineitem,
        columns=["l_orderkey", "l_shipmode", "l_receiptdate", "l_commitdate"],
        transforms=[
            Filter(
                And(
                    Col("l_commitdate") < Col("l_receiptdate"),
                    Col("l_receiptdate").between(1_096, 1_460),
                    Col("l_shipmode").isin([5, 6]),  # SHIP, TRUCK
                )
            ),
            HashJoinProbe(orders_table, "l_orderkey", ["o_orderpriority"]),
        ],
        sink=_PrioritySplit(),
    )

    def result() -> List[tuple]:
        high = {row[0]: row[1] for row in urgent.result_rows()}
        low = {row[0]: row[1] for row in non_urgent.result_rows()}
        return [
            (mode, high.get(mode, 0), low.get(mode, 0))
            for mode in sorted(set(high) | set(low))
        ]

    return QueryPlan("Q12", [build_orders, probe], result)


def _q22(db: TpchDatabase) -> QueryPlan:
    """Global sales opportunity: wealthy idle customers, anti-join orders.

    Pipeline 1 computes the average positive account balance; pipeline 2
    builds the set of customers with orders; pipeline 3 counts customers
    above the average balance who never ordered.
    """
    customer = db.table("customer")
    orders = db.table("orders")
    average = ScalarAggregateSink(sums={"balance": Col("c_acctbal")})
    scan_average = EnginePipeline(
        name="scan-customer-average",
        source=customer,
        columns=["c_acctbal"],
        transforms=[Filter(Col("c_acctbal") > 0.0)],
        sink=average,
    )
    ordering_customers = LazyJoinTable()
    collect_orderers = CollectSink(["o_custkey"])
    scan_orders = EnginePipeline(
        name="probe-customer-filter",
        source=orders,
        columns=["o_custkey"],
        transforms=[],
        sink=collect_orderers,
    )

    def orderers_relation():
        keys = np.unique(np.asarray(collect_orderers.result["o_custkey"]))
        return materialized_relation({"oc_custkey": keys})

    build_orderers = EnginePipeline(
        name="build-ordering-customers",
        source=orderers_relation,
        columns=["oc_custkey"],
        transforms=[],
        sink=HashJoinBuildSink("oc_custkey", [], ordering_customers),
        estimated_rows=customer.n_rows,
    )
    idle_rich = ScalarAggregateSink(sums={"balance": Col("c_acctbal")})

    def anti_probe_pipeline():
        mean_balance = (
            average.totals["balance"] / average.count if average.count else 0.0
        )
        return EnginePipeline(
            name="anti-join-orders",
            source=customer,
            columns=["c_custkey", "c_acctbal"],
            transforms=[
                Filter(Col("c_acctbal") > mean_balance),
                AntiJoinProbe(ordering_customers, "c_custkey"),
            ],
            sink=idle_rich,
        )

    # The filter constant depends on pipeline 1's result, so the final
    # pipeline is constructed lazily through a thin wrapper pipeline.
    class _DeferredPipeline(EnginePipeline):
        def __init__(self):
            self._inner = None
            super().__init__(
                name="anti-join-orders",
                source=customer,
                columns=["c_custkey", "c_acctbal"],
                transforms=[],
                sink=idle_rich,
            )

        def _ensure_inner(self):
            if self._inner is None:
                self._inner = anti_probe_pipeline()

        def run_morsel(self, rows):
            self._ensure_inner()
            processed = self._inner.run_morsel(rows)
            self.cursor = self._inner.cursor
            self.rows_processed = self._inner.rows_processed
            return processed

        def finalize(self):
            self._ensure_inner()
            if not self._inner.finalized:
                self._inner.finalize()
            self.cursor = self._inner.cursor
            self.finalized = True

    deferred = _DeferredPipeline()

    def result():
        return {"count": idle_rich.count, "total_balance": idle_rich.totals["balance"]}

    return QueryPlan("Q22", [scan_average, scan_orders, build_orderers, deferred], result)


def _qs(db: TpchDatabase) -> QueryPlan:
    """Streaming scan: discounted lineitems collected verbatim.

    Not part of TPC-H — a deliberately wide-output scan whose final
    (only) pipeline terminates in a :class:`CollectSink`, the one sink
    that can stream result rows morsel by morsel.  Every other catalog
    query ends in a pipeline breaker, so this plan is what exercises the
    incremental result path (and the time-to-first-batch benchmark).
    """
    lineitem = db.table("lineitem")
    columns = ["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]
    sink = CollectSink(columns)
    scan = EnginePipeline(
        name="scan-lineitem-collect",
        source=lineitem,
        columns=columns,
        transforms=[Filter(Col("l_discount") >= 0.05)],
        sink=sink,
    )

    def result():
        return sink.result

    return QueryPlan("QS", [scan], result)


_BUILDERS: Dict[str, Callable[[TpchDatabase], QueryPlan]] = {
    "Q1": _q1,
    "Q3": _q3,
    "Q4": _q4,
    "Q6": _q6,
    "Q12": _q12,
    "Q13": _q13,
    "Q14": _q14,
    "Q18": _q18,
    "Q19": _q19,
    "Q22": _q22,
    "QS": _qs,
}


def build_engine_query(name: str, db: TpchDatabase) -> QueryPlan:
    """Build the engine plan for one of :data:`ENGINE_QUERIES`."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise EngineError(
            f"no engine plan for {name!r}; available: {ENGINE_QUERIES}"
        )
    return builder(db)
