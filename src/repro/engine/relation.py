"""Columnar relations.

A :class:`Relation` is an ordered set of equally long numpy columns.
String columns are dictionary-encoded: the relation stores ``int32``
codes plus a per-column list of distinct values, which is both how
analytical engines store low-cardinality strings and what keeps the
pure-numpy operators vectorisable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import EngineError

#: A batch is the unit flowing through operators: column name -> array.
Batch = Dict[str, np.ndarray]


class Relation:
    """An immutable columnar table."""

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        dictionaries: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        if not columns:
            raise EngineError("a relation needs at least one column")
        lengths = {name: len(array) for name, array in columns.items()}
        distinct = set(lengths.values())
        if len(distinct) != 1:
            raise EngineError(f"ragged columns: {lengths}")
        self._columns = dict(columns)
        self._dictionaries = dict(dictionaries or {})
        self._n_rows = distinct.pop()
        for name in self._dictionaries:
            if name not in self._columns:
                raise EngineError(f"dictionary for unknown column {name!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def column_names(self) -> List[str]:
        """Column names in definition order."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """The backing array of one column."""
        try:
            return self._columns[name]
        except KeyError:
            raise EngineError(
                f"unknown column {name!r}; have {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Whether the relation contains ``name``."""
        return name in self._columns

    def dictionary(self, name: str) -> Optional[List[str]]:
        """The value dictionary of a string column (``None`` if numeric)."""
        return self._dictionaries.get(name)

    def encode_value(self, column: str, value: str) -> int:
        """Translate a string literal into its dictionary code.

        Raises if the value does not occur — predicates on non-existent
        values should fail loudly during plan building, not silently
        return empty results at runtime.
        """
        dictionary = self._dictionaries.get(column)
        if dictionary is None:
            raise EngineError(f"column {column!r} is not dictionary-encoded")
        try:
            return dictionary.index(value)
        except ValueError:
            raise EngineError(
                f"value {value!r} not present in column {column!r}"
            ) from None

    # ------------------------------------------------------------------
    # Morsel access
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int, names: Optional[Sequence[str]] = None) -> Batch:
        """Zero-copy views of rows [start, stop) for selected columns."""
        if not 0 <= start <= stop <= self._n_rows:
            raise EngineError(f"bad slice [{start}, {stop}) of {self._n_rows} rows")
        wanted: Iterable[str] = names if names is not None else self._columns
        return {name: self.column(name)[start:stop] for name in wanted}

    def take(self, indices: np.ndarray, names: Optional[Sequence[str]] = None) -> Batch:
        """Gather arbitrary rows (used by hash-join probes)."""
        wanted: Iterable[str] = names if names is not None else self._columns
        return {name: self.column(name)[indices] for name in wanted}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self._n_rows} rows, {len(self._columns)} columns)"


def batch_length(batch: Batch) -> int:
    """Row count of a batch (0 for an empty one)."""
    for array in batch.values():
        return len(array)
    return 0


def filter_batch(batch: Batch, mask: np.ndarray) -> Batch:
    """Apply a boolean selection mask to every column."""
    return {name: array[mask] for name, array in batch.items()}
