"""A small real columnar engine.

The discrete-event simulator models morsel execution with per-pipeline
cost rates.  This package grounds those rates in reality: it is an
actual (single-threaded, numpy-backed) morsel-driven query engine with

* columnar relations with dictionary-encoded strings
  (:mod:`~repro.engine.relation`),
* a TPC-H-style synthetic data generator (:mod:`~repro.engine.datagen`),
* vectorised expressions (:mod:`~repro.engine.expressions`),
* morsel-wise physical operators — scan/filter, hash join build/probe,
  hash aggregation, top-k (:mod:`~repro.engine.operators`),
* pipelines and query plans (:mod:`~repro.engine.pipeline`),
* hand-built plans for TPC-H-shaped queries (:mod:`~repro.engine.queries`),
* execution drivers, including an execution environment that lets the
  *schedulers* of :mod:`repro.core` drive real engine work
  (:mod:`~repro.engine.execution`), and
* throughput calibration against the simulator's workload profiles
  (:mod:`~repro.engine.calibration`).

Because of the GIL the engine runs morsels on one OS thread; the
schedulers interleave morsels of concurrent queries exactly as they
would on one core.
"""

from repro.engine.calibration import calibrate_pipeline_rates
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import EngineEnvironment, run_plan
from repro.engine.pipeline import EnginePipeline, QueryPlan
from repro.engine.queries import ENGINE_QUERIES, build_engine_query
from repro.engine.relation import Relation

__all__ = [
    "ENGINE_QUERIES",
    "EngineEnvironment",
    "EnginePipeline",
    "QueryPlan",
    "Relation",
    "TpchDatabase",
    "build_engine_query",
    "calibrate_pipeline_rates",
    "generate_tpch",
    "run_plan",
]
