"""Morsel-wise physical operators.

Operators come in two flavours:

* **transforms** consume a batch and produce a batch (filter, project,
  hash-join probe, semi/anti-join probe);
* **sinks** terminate a pipeline and materialise state for later
  pipelines (hash-join build, hash aggregation, scalar aggregation,
  top-k, plain collection).

All operators are vectorised over numpy arrays.  Join hash tables use
sorted-key binary search (``np.searchsorted``) over unique build keys —
equivalent to a hash table for our primary-key joins and much faster
than per-row Python dict lookups.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.expressions import Expr
from repro.engine.relation import Batch, batch_length, filter_batch
from repro.errors import EngineError


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------
class Transform(abc.ABC):
    """A batch-to-batch operator."""

    @abc.abstractmethod
    def apply(self, batch: Batch) -> Batch:
        """Process one batch; may shrink or extend it."""


class Filter(Transform):
    """Keep rows satisfying a predicate."""

    def __init__(self, predicate: Expr) -> None:
        self.predicate = predicate

    def apply(self, batch: Batch) -> Batch:
        mask = self.predicate.evaluate(batch)
        return filter_batch(batch, mask)


class Project(Transform):
    """Compute a new set of columns from expressions."""

    def __init__(self, outputs: Dict[str, Expr]) -> None:
        if not outputs:
            raise EngineError("projection needs at least one output")
        self.outputs = outputs

    def apply(self, batch: Batch) -> Batch:
        return {name: expr.evaluate(batch) for name, expr in self.outputs.items()}


class JoinTable:
    """A build-side 'hash table' over a unique integer key column.

    Keys are stored sorted; lookups binary-search them.  Payload columns
    are gathered through the matching build-row indices.
    """

    def __init__(self, key_column: str, payload: Batch) -> None:
        keys = payload.get(key_column)
        if keys is None:
            raise EngineError(f"build payload lacks key column {key_column!r}")
        order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[order]
        if len(self.sorted_keys) > 1 and np.any(
            self.sorted_keys[1:] == self.sorted_keys[:-1]
        ):
            raise EngineError(
                f"join key {key_column!r} is not unique on the build side"
            )
        self.key_column = key_column
        self._payload = {name: array[order] for name, array in payload.items()}

    @property
    def n_rows(self) -> int:
        """Build-side cardinality."""
        return len(self.sorted_keys)

    def lookup(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (probe mask, build-row indices) for matching rows."""
        if len(self.sorted_keys) == 0:
            return np.zeros(len(probe_keys), dtype=bool), np.empty(0, dtype=np.int64)
        positions = np.searchsorted(self.sorted_keys, probe_keys)
        positions_clipped = np.minimum(positions, len(self.sorted_keys) - 1)
        mask = self.sorted_keys[positions_clipped] == probe_keys
        return mask, positions_clipped[mask]

    def contains(self, probe_keys: np.ndarray) -> np.ndarray:
        """Membership mask (for semi/anti joins)."""
        mask, _ = self.lookup(probe_keys)
        return mask

    def gather(self, build_indices: np.ndarray, columns: List[str]) -> Batch:
        """Fetch payload columns for matched build rows."""
        return {name: self._payload[name][build_indices] for name in columns}


class HashJoinProbe(Transform):
    """Inner join: extend probe rows with build-side payload columns."""

    def __init__(
        self,
        table_ref: "LazyJoinTable",
        probe_key: str,
        payload_columns: List[str],
    ) -> None:
        self.table_ref = table_ref
        self.probe_key = probe_key
        self.payload_columns = payload_columns

    def apply(self, batch: Batch) -> Batch:
        table = self.table_ref.get()
        mask, build_indices = table.lookup(batch[self.probe_key])
        result = filter_batch(batch, mask)
        result.update(table.gather(build_indices, self.payload_columns))
        return result


class SemiJoinProbe(Transform):
    """Keep probe rows whose key exists on the build side."""

    def __init__(self, table_ref: "LazyJoinTable", probe_key: str) -> None:
        self.table_ref = table_ref
        self.probe_key = probe_key

    def apply(self, batch: Batch) -> Batch:
        mask = self.table_ref.get().contains(batch[self.probe_key])
        return filter_batch(batch, mask)


class AntiJoinProbe(Transform):
    """Keep probe rows whose key does NOT exist on the build side."""

    def __init__(self, table_ref: "LazyJoinTable", probe_key: str) -> None:
        self.table_ref = table_ref
        self.probe_key = probe_key

    def apply(self, batch: Batch) -> Batch:
        mask = self.table_ref.get().contains(batch[self.probe_key])
        return filter_batch(batch, np.logical_not(mask))


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class Sink(abc.ABC):
    """A pipeline terminator accumulating state across morsels."""

    #: Whether this sink can emit result rows per morsel instead of
    #: materializing them: ``True`` only for sinks whose per-morsel
    #: output *is* final result rows (:class:`CollectSink`).  Pipeline
    #: breakers (joins' build sides, aggregates, sorts, top-k) must see
    #: all input before producing anything and stay ``False``.
    streams_rows = False

    @abc.abstractmethod
    def consume(self, batch: Batch) -> None:
        """Fold one batch into the sink state."""

    def finalize(self) -> None:
        """Hook run during task-set finalization (may be a no-op)."""


class LazyJoinTable:
    """Holder wiring a build sink to the probes of later pipelines."""

    def __init__(self) -> None:
        self._table: Optional[JoinTable] = None

    def set(self, table: JoinTable) -> None:
        self._table = table

    def get(self) -> JoinTable:
        if self._table is None:
            raise EngineError(
                "join table probed before its build pipeline finalized"
            )
        return self._table


class HashJoinBuildSink(Sink):
    """Materialise build-side rows; produce the JoinTable on finalize."""

    def __init__(self, key_column: str, payload_columns: List[str], out: LazyJoinTable) -> None:
        self.key_column = key_column
        self.payload_columns = sorted(set(payload_columns) | {key_column})
        self.out = out
        self._parts: List[Batch] = []

    def consume(self, batch: Batch) -> None:
        if batch_length(batch):
            self._parts.append({name: batch[name] for name in self.payload_columns})

    def finalize(self) -> None:
        if self._parts:
            merged = {
                name: np.concatenate([part[name] for part in self._parts])
                for name in self.payload_columns
            }
        else:
            merged = {name: np.empty(0, dtype=np.int64) for name in self.payload_columns}
        self.out.set(JoinTable(self.key_column, merged))
        self._parts = []


class HashAggregateSink(Sink):
    """Group-by aggregation with SUM / MIN / MAX / AVG / COUNT aggregates.

    Per morsel the batch is reduced with ``np.unique`` plus vectorised
    scatter reductions; the partial results merge into a Python dict
    keyed by the group tuple — the analogue of merging thread-local
    partial aggregates during task-set finalization.

    ``avgs`` are computed as merged (sum, count) pairs, which is the
    only decomposition that merges correctly across morsels.
    """

    def __init__(
        self,
        group_columns: List[str],
        sums: Dict[str, Expr],
        count_alias: Optional[str] = None,
        mins: Optional[Dict[str, Expr]] = None,
        maxs: Optional[Dict[str, Expr]] = None,
        avgs: Optional[Dict[str, Expr]] = None,
    ) -> None:
        if not group_columns:
            raise EngineError("use ScalarAggregateSink for global aggregates")
        self.group_columns = group_columns
        self.sums = sums
        self.mins = mins or {}
        self.maxs = maxs or {}
        self.avgs = avgs or {}
        self.count_alias = count_alias
        self.groups: Dict[Tuple, Dict[str, float]] = {}

    def _reduce_keys(self, batch: Batch, n: int):
        key_arrays = [np.asarray(batch[c]) for c in self.group_columns]
        if len(key_arrays) == 1:
            # The common single-key path avoids the slow axis-based unique.
            flat_uniques, inverse = np.unique(key_arrays[0], return_inverse=True)
            return flat_uniques.reshape(-1, 1), inverse
        composite = np.empty((n, len(key_arrays)), dtype=np.int64)
        for i, keys in enumerate(key_arrays):
            composite[:, i] = keys
        return np.unique(composite, axis=0, return_inverse=True)

    def consume(self, batch: Batch) -> None:
        n = batch_length(batch)
        if n == 0:
            return
        uniques, inverse = self._reduce_keys(batch, n)
        n_groups = len(uniques)
        partial_sums = {}
        for alias, expr in self.sums.items():
            acc = np.zeros(n_groups)
            np.add.at(acc, inverse, expr.evaluate(batch))
            partial_sums[alias] = acc
        partial_mins = {}
        for alias, expr in self.mins.items():
            acc = np.full(n_groups, np.inf)
            np.minimum.at(acc, inverse, expr.evaluate(batch))
            partial_mins[alias] = acc
        partial_maxs = {}
        for alias, expr in self.maxs.items():
            acc = np.full(n_groups, -np.inf)
            np.maximum.at(acc, inverse, expr.evaluate(batch))
            partial_maxs[alias] = acc
        partial_avgsums = {}
        for alias, expr in self.avgs.items():
            acc = np.zeros(n_groups)
            np.add.at(acc, inverse, expr.evaluate(batch))
            partial_avgsums[alias] = acc
        counts = np.zeros(n_groups, dtype=np.int64)
        np.add.at(counts, inverse, 1)
        for group_index, key_row in enumerate(uniques):
            key = tuple(int(k) for k in key_row)
            entry = self.groups.get(key)
            if entry is None:
                entry = {alias: 0.0 for alias in self.sums}
                entry.update({f"min:{alias}": float("inf") for alias in self.mins})
                entry.update({f"max:{alias}": float("-inf") for alias in self.maxs})
                entry.update({f"avg:{alias}": 0.0 for alias in self.avgs})
                entry["__count__"] = 0
                self.groups[key] = entry
            for alias in self.sums:
                entry[alias] += float(partial_sums[alias][group_index])
            for alias in self.mins:
                entry[f"min:{alias}"] = min(
                    entry[f"min:{alias}"], float(partial_mins[alias][group_index])
                )
            for alias in self.maxs:
                entry[f"max:{alias}"] = max(
                    entry[f"max:{alias}"], float(partial_maxs[alias][group_index])
                )
            for alias in self.avgs:
                entry[f"avg:{alias}"] += float(partial_avgsums[alias][group_index])
            entry["__count__"] += int(counts[group_index])

    def result_rows(self) -> List[Tuple]:
        """(group key..., sums..., mins..., maxs..., avgs..., count) rows
        sorted by group key."""
        rows = []
        for key in sorted(self.groups):
            entry = self.groups[key]
            row = list(key) + [entry[alias] for alias in self.sums]
            row += [entry[f"min:{alias}"] for alias in self.mins]
            row += [entry[f"max:{alias}"] for alias in self.maxs]
            count = entry["__count__"]
            row += [
                entry[f"avg:{alias}"] / count if count else float("nan")
                for alias in self.avgs
            ]
            if self.count_alias is not None:
                row.append(count)
            rows.append(tuple(row))
        return rows


class ScalarAggregateSink(Sink):
    """Global SUM / COUNT aggregates without grouping."""

    def __init__(self, sums: Dict[str, Expr]) -> None:
        self.sums = sums
        self.totals: Dict[str, float] = {alias: 0.0 for alias in sums}
        self.count = 0

    def consume(self, batch: Batch) -> None:
        n = batch_length(batch)
        if n == 0:
            return
        self.count += n
        for alias, expr in self.sums.items():
            self.totals[alias] += float(np.sum(expr.evaluate(batch)))


class TopKSink(Sink):
    """Keep the k rows with the largest sort-key value."""

    def __init__(self, sort_column: str, k: int, payload_columns: List[str]) -> None:
        if k <= 0:
            raise EngineError("top-k needs k >= 1")
        self.sort_column = sort_column
        self.k = k
        self.payload_columns = sorted(set(payload_columns) | {sort_column})
        self._best: Optional[Batch] = None

    def consume(self, batch: Batch) -> None:
        if batch_length(batch) == 0:
            return
        part = {name: np.asarray(batch[name]) for name in self.payload_columns}
        if self._best is not None:
            part = {
                name: np.concatenate([self._best[name], part[name]])
                for name in self.payload_columns
            }
        keys = part[self.sort_column]
        if len(keys) > self.k:
            top = np.argpartition(keys, len(keys) - self.k)[-self.k:]
            part = {name: array[top] for name, array in part.items()}
        self._best = part

    def result_rows(self) -> List[Tuple]:
        """The top-k rows, sorted descending by the sort key."""
        if self._best is None:
            return []
        order = np.argsort(self._best[self.sort_column])[::-1]
        names = self.payload_columns
        return [
            tuple(self._best[name][i] for name in names) for i in order
        ]


class SortSink(Sink):
    """Materialise all rows and sort them on finalize (full ORDER BY).

    Partial batches are collected during execution; finalization performs
    the sort — the engine analogue of the paper's "shuffling of
    partitions during sorting" finalization step.
    """

    def __init__(
        self,
        sort_columns: List[str],
        payload_columns: List[str],
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        if not sort_columns:
            raise EngineError("ORDER BY needs at least one sort column")
        self.sort_columns = sort_columns
        self.payload_columns = sorted(set(payload_columns) | set(sort_columns))
        self.descending = descending
        self.limit = limit
        self._parts: List[Batch] = []
        self._sorted: Optional[Batch] = None

    def consume(self, batch: Batch) -> None:
        if batch_length(batch):
            self._parts.append({name: batch[name] for name in self.payload_columns})

    def finalize(self) -> None:
        if self._parts:
            merged = {
                name: np.concatenate([part[name] for part in self._parts])
                for name in self.payload_columns
            }
        else:
            merged = {name: np.empty(0) for name in self.payload_columns}
        keys = [merged[c] for c in reversed(self.sort_columns)]
        order = np.lexsort(keys)
        if self.descending:
            order = order[::-1]
        if self.limit is not None:
            order = order[: self.limit]
        self._sorted = {name: array[order] for name, array in merged.items()}
        self._parts = []

    def result_rows(self) -> List[Tuple]:
        """Rows in sort order, columns in payload order."""
        if self._sorted is None:
            raise EngineError("SortSink read before finalization")
        n = batch_length(self._sorted)
        names = self.payload_columns
        return [tuple(self._sorted[name][i] for name in names) for i in range(n)]


class CollectSink(Sink):
    """Materialise all rows (small results / intermediate views)."""

    streams_rows = True

    def __init__(self, columns: List[str]) -> None:
        self.columns = columns
        self._parts: List[Batch] = []
        self.result: Optional[Batch] = None

    def consume(self, batch: Batch) -> None:
        if batch_length(batch):
            self._parts.append({name: batch[name] for name in self.columns})

    def finalize(self) -> None:
        if self._parts:
            self.result = {
                name: np.concatenate([part[name] for part in self._parts])
                for name in self.columns
            }
        else:
            self.result = {name: np.empty(0) for name in self.columns}
        self._parts = []


class ChannelSink(Sink):
    """Stream result rows into a bounded channel, morsel by morsel.

    Wraps a :class:`CollectSink` of a query's *final* pipeline when the
    caller opened a result channel: each consumed batch leaves the
    engine immediately as one ``rows`` chunk instead of joining a
    private buffer, so peak result memory is bounded by the channel
    capacity regardless of output size.  The chunks are exactly the
    batches the collect sink would have buffered, in the same order —
    reassembling them reproduces its materialized result bit for bit.

    On a full *blocking* channel ``consume`` parks the producing worker
    thread inside the morsel; the stride scheduler keeps charging that
    query's CPU time, so a slow consumer naturally deprioritizes its
    own query (backpressure through the scheduler, §2 resource groups).
    """

    streams_rows = True

    def __init__(self, inner: CollectSink, channel) -> None:
        self.inner = inner
        self.channel = channel

    @property
    def columns(self) -> List[str]:
        return self.inner.columns

    def consume(self, batch: Batch) -> None:
        rows = batch_length(batch)
        if rows:
            self.channel.put_rows(
                {name: batch[name] for name in self.inner.columns}, rows
            )

    def finalize(self) -> None:
        # An empty result still needs one chunk so the assembled value
        # matches CollectSink's empty-column batch.
        if self.channel.chunks_put == 0 and not self.channel.closed:
            self.channel.put_rows(
                {name: np.empty(0) for name in self.inner.columns}, 0
            )
