"""Calibrating simulator cost profiles against real engine executions.

The workload profiles of :mod:`repro.workloads.profiles` assign every
pipeline a single-thread throughput.  This module grounds those numbers:
it executes the real engine plans at a small scale factor, measures
per-pipeline throughput, and produces :class:`PipelineSpec` rates for
the simulator.  A comparison helper reports how far the shipped
profiles deviate from the measurements on this machine.

Absolute rates differ between a numpy engine and a compiling C++ engine
by a large constant factor — what calibration checks is that *relative*
pipeline costs (the quantity every figure depends on) are sane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.specs import PipelineSpec, QuerySpec
from repro.engine.datagen import TpchDatabase, generate_tpch
from repro.engine.execution import run_plan
from repro.engine.queries import ENGINE_QUERIES, build_engine_query


@dataclass
class CalibratedQuery:
    """Measured profile of one engine query."""

    name: str
    scale_factor: float
    pipelines: List[PipelineSpec]
    total_seconds: float

    def to_query_spec(self) -> QuerySpec:
        """The measured profile as a scheduler-consumable spec."""
        return QuerySpec(
            name=self.name,
            scale_factor=self.scale_factor,
            pipelines=tuple(self.pipelines),
        )


#: Memoized calibrations keyed by (scale_factor, seed, queries,
#: morsel_rows) — the database profile identity.  Calibration runs every
#: engine plan to completion, which dwarfs everything an experiment
#: driver does with the result; sweep drivers that calibrate per figure
#: (or per repetition) hit this cache after the first run.
_CALIBRATION_CACHE: Dict[tuple, Dict[str, CalibratedQuery]] = {}


def clear_calibration_cache() -> None:
    """Drop memoized calibrations (tests; forcing a re-measurement)."""
    _CALIBRATION_CACHE.clear()


def calibration_cache_size() -> int:
    """Number of memoized database profiles (tests, warmup checks)."""
    return len(_CALIBRATION_CACHE)


def warm_calibration(
    scale_factor: float = 0.01,
    seed: int = 0,
    queries: Sequence[str] = ENGINE_QUERIES,
    morsel_rows: int = 65_536,
) -> int:
    """Populate the calibration cache for one database profile.

    Module-level and picklable on purpose: register it as a pool warmup
    (``repro.experiments.pool.register_warmup(warm_calibration, sf,
    seed)``) and every warm worker measures the profile once at spawn,
    so no sweep cell or epoch ever pays calibration inside its timed
    region.  Returns the number of calibrated queries.
    """
    db = generate_tpch(scale_factor=scale_factor, seed=seed)
    return len(calibrate_pipeline_rates(db, queries=queries, morsel_rows=morsel_rows))


def calibrate_pipeline_rates(
    db: TpchDatabase = None,
    queries: Sequence[str] = ENGINE_QUERIES,
    morsel_rows: int = 65_536,
    use_cache: bool = True,
) -> Dict[str, CalibratedQuery]:
    """Measure per-pipeline throughput for the engine queries.

    Results are memoized per database profile ``(scale_factor, seed)``
    plus the query list and morsel size; pass ``use_cache=False`` to
    force fresh wall-clock measurements.
    """
    if db is None:
        db = generate_tpch(scale_factor=0.01, seed=0)
    cache_key = (db.scale_factor, db.seed, tuple(queries), morsel_rows)
    if use_cache:
        cached = _CALIBRATION_CACHE.get(cache_key)
        if cached is not None:
            return dict(cached)
    calibrated: Dict[str, CalibratedQuery] = {}
    for name in queries:
        plan = build_engine_query(name, db)
        _, timings = run_plan(plan, morsel_rows)
        pipelines = [
            PipelineSpec(
                name=t.name,
                tuples=max(1, t.rows),
                tuples_per_second=max(1.0, t.rows_per_second),
            )
            for t in timings
        ]
        calibrated[name] = CalibratedQuery(
            name=name,
            scale_factor=db.scale_factor,
            pipelines=pipelines,
            total_seconds=sum(t.seconds for t in timings),
        )
    if use_cache:
        _CALIBRATION_CACHE[cache_key] = dict(calibrated)
    return calibrated


def relative_cost_comparison(
    calibrated: Dict[str, CalibratedQuery]
) -> List[Dict[str, float]]:
    """Compare measured relative query costs against the shipped profiles.

    Both cost vectors are normalised to Q6 (the cheapest query), so the
    comparison is invariant to the absolute speed gap between numpy and
    a compiling engine.
    """
    from repro.workloads.profiles import tpch_query

    names = sorted(calibrated)
    if "Q6" not in calibrated:
        raise ValueError("calibration needs Q6 as the normalisation anchor")
    measured_anchor = calibrated["Q6"].total_seconds
    profile_anchor = tpch_query("Q6", 1.0).total_work_seconds
    rows: List[Dict[str, float]] = []
    for name in names:
        measured = calibrated[name].total_seconds / measured_anchor
        profiled = tpch_query(name, 1.0).total_work_seconds / profile_anchor
        rows.append(
            {
                "query": name,
                "measured_vs_q6": measured,
                "profile_vs_q6": profiled,
                "ratio": measured / profiled if profiled else float("nan"),
            }
        )
    return rows
