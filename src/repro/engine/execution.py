"""Execution drivers for the mini engine.

Two modes:

* :func:`run_plan` — plain single-threaded morsel-wise execution with
  per-pipeline timing (used for calibration and correctness tests);
* :class:`EngineEnvironment` — an
  :class:`~repro.core.morsel_exec.ExecutionEnvironment` implementation
  that lets the *schedulers* of :mod:`repro.core` drive real engine
  work.  Every ``run_morsel`` call executes actual numpy kernels and
  reports the measured wall time, so the whole scheduling stack
  (stride passes, priority decay, adaptive morsel sizing, self-tuning)
  operates on genuine measurements.  Because of the GIL the morsels of
  "parallel" workers are interleaved on one OS thread — virtual time
  then models a single-core machine exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.specs import PipelineSpec, QuerySpec
from repro.core.task import TaskSet
from repro.engine.datagen import TpchDatabase
from repro.engine.operators import ChannelSink
from repro.engine.pipeline import EnginePipeline, QueryPlan
from repro.engine.queries import build_engine_query
from repro.errors import EngineError
from repro.runtime.channel import STREAMED


@dataclass
class PipelineTiming:
    """Measured execution profile of one pipeline."""

    name: str
    rows: int
    seconds: float

    @property
    def rows_per_second(self) -> float:
        """Measured single-thread throughput."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.rows / self.seconds


def run_plan(
    plan: QueryPlan, morsel_rows: int = 65_536
) -> Tuple[object, List[PipelineTiming]]:
    """Execute a plan single-threaded; return (result, per-pipeline timing)."""
    timings: List[PipelineTiming] = []
    for pipeline in plan.pipelines:
        start = time.perf_counter()
        pipeline.run_to_completion(morsel_rows)
        elapsed = time.perf_counter() - start
        timings.append(
            PipelineTiming(
                name=pipeline.name,
                rows=pipeline.rows_processed,
                seconds=elapsed,
            )
        )
    return plan.result(), timings


def engine_query_spec(
    name: str,
    db: TpchDatabase,
    rate_guess: float = 5.0e6,
) -> QuerySpec:
    """A :class:`QuerySpec` describing an engine plan to the scheduler.

    Tuple counts come from the plan's (estimated) input cardinalities;
    throughput starts at ``rate_guess`` and is corrected at runtime by
    the adaptive morsel executor's measurements, which is exactly the
    mechanism §3.1 relies on.
    """
    plan = build_engine_query(name, db)
    pipelines = tuple(
        PipelineSpec(
            name=pipeline.name,
            tuples=max(1, pipeline.estimated_rows),
            tuples_per_second=rate_guess,
        )
        for pipeline in plan.pipelines
    )
    return QuerySpec(name=name, scale_factor=db.scale_factor, pipelines=pipelines)


@dataclass
class _PlanInstance:
    """A per-resource-group plan instantiation."""

    plan: QueryPlan
    pipelines: Dict[int, EnginePipeline] = field(default_factory=dict)
    #: Whether the final pipeline's sink was wrapped in a
    #: :class:`~repro.engine.operators.ChannelSink` — the result then
    #: lives in the channel, not in the plan.
    streamed: bool = False


class EngineEnvironment:
    """Execution environment backed by real engine work.

    The scheduler identifies work as ``(resource group, pipeline
    index)``; this environment instantiates the matching engine plan
    per resource group on first touch and advances the pipeline's
    cursor by the carved tuple count, returning the *measured* wall
    time of the numpy kernels.
    """

    def __init__(self, db: TpchDatabase) -> None:
        self.db = db
        self._instances: Dict[int, _PlanInstance] = {}
        #: Completed plans by query id, for result retrieval.  Streamed
        #: queries hold the :data:`STREAMED` sentinel instead of a value.
        self.results: Dict[int, object] = {}
        #: Open result channels by query id (see :meth:`open_channel`).
        self._channels: Dict[int, object] = {}
        # Concurrency seams (threaded backend): a creation lock guarding
        # instance/lock setup plus one lock per resource group that
        # serializes the group's engine work — the mini engine's
        # pipeline cursors are not thread-safe, so concurrent morsels of
        # *one* query are serialized while different queries proceed in
        # parallel.  Both stay None under sequential execution.
        self._creation_lock: Optional[threading.Lock] = None
        self._group_locks: Dict[int, threading.Lock] = {}

    def enable_concurrency(self) -> None:
        """Make ``run_morsel`` safe to call from multiple worker threads."""
        if self._creation_lock is None:
            self._creation_lock = threading.Lock()

    # ------------------------------------------------------------------
    # ExecutionEnvironment protocol
    # ------------------------------------------------------------------
    def run_morsel(self, task_set: TaskSet, tuples: int) -> float:
        group = task_set.resource_group
        creation_lock = self._creation_lock
        if creation_lock is None:
            instance = self._instances.get(group.query_id)
            if instance is None:
                instance = _PlanInstance(
                    plan=build_engine_query(group.query.name, self.db)
                )
                self._instances[group.query_id] = instance
            return self._run_pipeline_morsel(instance, task_set, group, tuples)
        with creation_lock:
            instance = self._instances.get(group.query_id)
            if instance is None:
                instance = _PlanInstance(
                    plan=build_engine_query(group.query.name, self.db)
                )
                self._instances[group.query_id] = instance
            group_lock = self._group_locks.get(group.query_id)
            if group_lock is None:
                group_lock = threading.Lock()
                self._group_locks[group.query_id] = group_lock
        with group_lock:
            return self._run_pipeline_morsel(instance, task_set, group, tuples)

    def _run_pipeline_morsel(
        self,
        instance: _PlanInstance,
        task_set: TaskSet,
        group,
        tuples: int,
    ) -> float:
        index = task_set.pipeline_index
        pipeline = instance.pipelines.get(index)
        if pipeline is None:
            if index >= len(instance.plan.pipelines):
                raise EngineError(
                    f"query {group.query.name!r} has no pipeline {index}"
                )
            pipeline = instance.plan.pipelines[index]
            instance.pipelines[index] = pipeline
            if index == len(instance.plan.pipelines) - 1:
                channel = self._channels.get(group.query_id)
                sink = getattr(pipeline, "sink", None)
                if (
                    channel is not None
                    and sink is not None
                    and sink.streams_rows
                ):
                    # Final pipeline of a channel-opened query: result
                    # rows leave per morsel instead of materializing.
                    pipeline.sink = ChannelSink(sink, channel)
                    instance.streamed = True
            # The previous pipeline must be finalized before this one
            # starts (resource-group ordering); finalize it now if the
            # scheduler has not done so via finalize_pipeline.
            if index > 0:
                previous = instance.plan.pipelines[index - 1]
                if not previous.finalized:
                    previous.finalize()
        start = time.perf_counter()
        pipeline.run_morsel(tuples)
        elapsed = time.perf_counter() - start
        # Guard against timer granularity: a zero-duration morsel would
        # break throughput estimation and stride accounting.
        return max(elapsed, 1.0e-7)

    # ------------------------------------------------------------------
    # Result access
    # ------------------------------------------------------------------
    def open_channel(self, query_id: int, channel) -> None:
        """Attach a result channel to ``query_id`` before it executes.

        If the query's final pipeline can stream (its sink is a
        :class:`~repro.engine.operators.CollectSink`), result rows flow
        into the channel per morsel; otherwise the materialized result
        is pushed as a single terminal chunk at :meth:`finish_query`.
        Must be called before the query's first morsel runs.
        """
        self._channels[query_id] = channel

    def discard_query(self, query_id: int) -> None:
        """Drop a cancelled query's plan state without finalizing it.

        Finalization would drain the remaining relation through the
        pipeline (the defensive drain in ``EnginePipeline.finalize``) —
        exactly the work cancellation is meant to avoid.
        """
        self._instances.pop(query_id, None)
        self._channels.pop(query_id, None)
        self._group_locks.pop(query_id, None)

    def finish_query(self, query_id: int) -> object:
        """Finalize any remaining pipelines and return the result.

        For a query whose rows streamed through a channel the engine
        holds no materialized value — the chunks in the channel are the
        result — so the :data:`STREAMED` sentinel is returned instead.
        """
        instance = self._instances.get(query_id)
        if instance is None:
            raise EngineError(f"query {query_id} never executed")
        for pipeline in instance.plan.pipelines:
            if not pipeline.finalized:
                pipeline.finalize()
        if instance.streamed:
            self.results[query_id] = STREAMED
            return STREAMED
        result = instance.plan.result()
        channel = self._channels.get(query_id)
        if channel is not None and not channel.closed:
            # Pipeline-breaker final sink: the whole result crosses as
            # one terminal chunk so handles can still fetch/iterate.
            channel.put_final(result)
        self.results[query_id] = result
        return result

    def rng(self, name: str):  # pragma: no cover - lottery support
        """Deterministic RNG stream (protocol parity with the simulator)."""
        import numpy as np

        return np.random.Generator(np.random.PCG64(abs(hash(name)) % (2**32)))
