"""Vectorised expression evaluation over column batches.

Expressions form a small tree (columns, constants, arithmetic,
comparisons, boolean connectives, BETWEEN, IN) evaluated with numpy over
a batch.  This is exactly the subset the TPC-H-shaped queries in
:mod:`repro.engine.queries` need.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.engine.relation import Batch
from repro.errors import EngineError


class Expr(abc.ABC):
    """Base class of the expression tree."""

    @abc.abstractmethod
    def evaluate(self, batch: Batch) -> np.ndarray:
        """Evaluate over a batch, returning one value per row."""

    # Operator sugar keeps the query definitions readable.
    def __add__(self, other: "Expr") -> "Expr":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other: "Expr") -> "Expr":
        return Arith("*", self, _wrap(other))

    def __lt__(self, other) -> "Expr":
        return Compare("<", self, _wrap(other))

    def __le__(self, other) -> "Expr":
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other) -> "Expr":
        return Compare(">", self, _wrap(other))

    def __ge__(self, other) -> "Expr":
        return Compare(">=", self, _wrap(other))

    def equals(self, other) -> "Expr":
        """Equality predicate (named method; __eq__ stays identity)."""
        return Compare("==", self, _wrap(other))

    def not_equals(self, other) -> "Expr":
        """Inequality predicate."""
        return Compare("!=", self, _wrap(other))

    def between(self, low, high) -> "Expr":
        """Inclusive range predicate."""
        return And(Compare(">=", self, _wrap(low)), Compare("<=", self, _wrap(high)))

    def isin(self, values: Iterable) -> "Expr":
        """Set-membership predicate."""
        return InSet(self, values)


def _wrap(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    return Const(value)


class Col(Expr):
    """A column reference."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, batch: Batch) -> np.ndarray:
        try:
            return batch[self.name]
        except KeyError:
            raise EngineError(
                f"column {self.name!r} not in batch ({sorted(batch)})"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Col({self.name!r})"


class Const(Expr):
    """A literal constant, broadcast over the batch."""

    def __init__(self, value) -> None:
        self.value = value

    def evaluate(self, batch: Batch) -> np.ndarray:
        length = 0
        for array in batch.values():
            length = len(array)
            break
        return np.full(length, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Const({self.value!r})"


_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}

_COMPARE_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


class Arith(Expr):
    """Binary arithmetic."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise EngineError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: Batch) -> np.ndarray:
        return _ARITH_OPS[self.op](self.left.evaluate(batch), self.right.evaluate(batch))


class Compare(Expr):
    """Binary comparison producing a boolean mask."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARE_OPS:
            raise EngineError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: Batch) -> np.ndarray:
        return _COMPARE_OPS[self.op](
            self.left.evaluate(batch), self.right.evaluate(batch)
        )


class And(Expr):
    """Logical conjunction of any number of predicates."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise EngineError("And needs at least one term")
        self.terms = terms

    def evaluate(self, batch: Batch) -> np.ndarray:
        result = self.terms[0].evaluate(batch)
        for term in self.terms[1:]:
            result = np.logical_and(result, term.evaluate(batch))
        return result


class Or(Expr):
    """Logical disjunction of any number of predicates."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise EngineError("Or needs at least one term")
        self.terms = terms

    def evaluate(self, batch: Batch) -> np.ndarray:
        result = self.terms[0].evaluate(batch)
        for term in self.terms[1:]:
            result = np.logical_or(result, term.evaluate(batch))
        return result


class Not(Expr):
    """Logical negation."""

    def __init__(self, term: Expr) -> None:
        self.term = term

    def evaluate(self, batch: Batch) -> np.ndarray:
        return np.logical_not(self.term.evaluate(batch))


class InSet(Expr):
    """Set membership against a fixed value list."""

    def __init__(self, term: Expr, values: Iterable) -> None:
        self.term = term
        self.values: Sequence = tuple(values)
        if not self.values:
            raise EngineError("InSet needs at least one value")

    def evaluate(self, batch: Batch) -> np.ndarray:
        return np.isin(self.term.evaluate(batch), np.asarray(self.values))
