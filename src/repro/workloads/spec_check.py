"""Sanity helpers validating that workload profiles are well-formed.

Used by tests and by :mod:`repro.engine.calibration` to cross-check that
calibrated rates stay within a plausible band of the shipped profiles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.specs import QuerySpec


def profile_summary(queries: List[QuerySpec]) -> Dict[str, float]:
    """Aggregate statistics over a suite of query specs."""
    total = [q.total_work_seconds for q in queries]
    rates: List[float] = []
    for query in queries:
        for pipeline in query.pipelines:
            rates.append(pipeline.tuples_per_second)
    return {
        "queries": float(len(queries)),
        "min_work": min(total),
        "max_work": max(total),
        "mean_work": sum(total) / len(total),
        "per_tuple_cost_spread": (max(rates) / min(rates)) if rates else 0.0,
    }


def validate_suite(queries: List[QuerySpec]) -> List[str]:
    """Return a list of problems (empty when the suite is consistent)."""
    problems: List[str] = []
    seen = set()
    for query in queries:
        key = (query.name, query.scale_factor)
        if key in seen:
            problems.append(f"duplicate query {key}")
        seen.add(key)
        if query.total_work_seconds <= 0.0:
            problems.append(f"{query.name}: non-positive work")
        for pipeline in query.pipelines:
            if pipeline.tuples <= 0:
                problems.append(f"{query.name}/{pipeline.name}: no tuples")
    return problems
