"""Pipeline cost profiles for the 22 TPC-H query shapes.

The evaluation draws from TPC-H at SF3 and SF30.  We cannot run the
authors' compiled C++ plans, so each query is described by the structure
that matters to the scheduler: its ordered pipelines, their input
cardinalities, their single-worker throughput, and small finalization
costs (merging partial aggregates, shuffling sort partitions).

The profiles below are *shape-faithful*: pipeline decompositions follow
the standard morsel-driven plans (build sides before probe sides), base
cardinalities are the TPC-H SF1 table sizes, and the single-threaded
SF1 execution times are set to the relative magnitudes a compiling
engine exhibits (Q6/Q11/Q22 very short; Q1/Q9/Q13/Q18/Q21 long; per-tuple
costs across pipelines spread by >30x, which drives Figure 5a).
Absolute speed does not matter for any figure — only relative durations
and pipeline structure do.

Tuple counts scale linearly with the scale factor while per-tuple costs
stay constant, which matches TPC-H's linear data growth.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.specs import PipelineSpec, QuerySpec
from repro.errors import WorkloadError

# TPC-H base-table cardinalities at scale factor 1.
LINEITEM = 6_001_215
ORDERS = 1_500_000
CUSTOMER = 150_000
PART = 200_000
PARTSUPP = 800_000
SUPPLIER = 10_000
NATION = 25
REGION = 5

#: (pipeline-name, input rows at SF1, single-thread seconds at SF1,
#:  finalize seconds at SF1).  Rates derive as rows / seconds.
_PipelineDef = Tuple[str, int, float, float]

_QUERY_PIPELINES: Dict[str, List[_PipelineDef]] = {
    # Q1: single heavy scan+aggregate over lineitem; tiny result sort.
    "Q1": [
        ("scan-lineitem-aggregate", LINEITEM, 0.120, 0.0020),
        ("sort-results", 10, 0.003, 0.0),
    ],
    # Q2: minimum-cost supplier; small builds, partsupp scan, part probe.
    "Q2": [
        ("build-supplier-region", SUPPLIER, 0.0012, 0.0002),
        ("scan-partsupp-probe", PARTSUPP, 0.0190, 0.0004),
        ("probe-part", PART, 0.0060, 0.0),
        ("sort-output", 100, 0.0010, 0.0),
    ],
    # Q3: customer/orders builds feeding a lineitem probe + aggregation.
    "Q3": [
        ("build-customer", CUSTOMER, 0.0080, 0.0005),
        ("build-orders", ORDERS, 0.0220, 0.0010),
        ("probe-lineitem-aggregate", LINEITEM, 0.0380, 0.0010),
    ],
    # Q4: semi-join existence check of lineitem into orders.
    "Q4": [
        ("build-lineitem-semijoin", LINEITEM, 0.0320, 0.0010),
        ("probe-orders-aggregate", ORDERS, 0.0130, 0.0002),
    ],
    # Q5: multi-way join through region/nation/customer/orders/lineitem.
    "Q5": [
        ("build-dimensions", SUPPLIER + NATION, 0.0012, 0.0001),
        ("build-customer", CUSTOMER, 0.0070, 0.0004),
        ("build-orders", ORDERS, 0.0200, 0.0008),
        ("probe-lineitem", LINEITEM, 0.0330, 0.0008),
        ("aggregate-merge", NATION, 0.0010, 0.0),
    ],
    # Q6: a single tight filter+sum scan (the shortest query).
    "Q6": [
        ("scan-lineitem-filter-sum", LINEITEM, 0.0240, 0.0001),
    ],
    # Q7: volume shipping; two nation-filtered join chains.
    "Q7": [
        ("build-nation-supplier", SUPPLIER + 2 * NATION, 0.0012, 0.0001),
        ("build-customer", CUSTOMER, 0.0070, 0.0004),
        ("build-orders", ORDERS, 0.0190, 0.0008),
        ("probe-lineitem-aggregate", LINEITEM, 0.0370, 0.0008),
        ("sort-output", 50, 0.0010, 0.0),
    ],
    # Q8: national market share.
    "Q8": [
        ("build-part-filtered", PART, 0.0050, 0.0003),
        ("build-supplier", SUPPLIER, 0.0010, 0.0001),
        ("build-orders-customer", ORDERS + CUSTOMER, 0.0180, 0.0008),
        ("probe-lineitem", LINEITEM, 0.0270, 0.0006),
        ("aggregate-years", 100, 0.0010, 0.0),
    ],
    # Q9: product type profit; the widest join over lineitem+partsupp.
    "Q9": [
        ("build-part-like", PART, 0.0060, 0.0004),
        ("build-supplier-nation", SUPPLIER + NATION, 0.0010, 0.0001),
        ("probe-lineitem-partsupp", LINEITEM + PARTSUPP, 0.1260, 0.0015),
        ("aggregate-nation-year", 175, 0.0010, 0.0),
    ],
    # Q10: returned-item report with top-k output.
    "Q10": [
        ("build-customer-nation", CUSTOMER + NATION, 0.0080, 0.0005),
        ("build-orders-filtered", ORDERS, 0.0200, 0.0008),
        ("probe-lineitem-returns", LINEITEM, 0.0380, 0.0008),
        ("topk-revenue", 37_000, 0.0060, 0.0),
    ],
    # Q11: tiny partsupp value analysis (the shortest multi-pipeline query).
    "Q11": [
        ("build-supplier-nation", SUPPLIER + NATION, 0.0010, 0.0001),
        ("scan-partsupp-aggregate", PARTSUPP, 0.0080, 0.0004),
        ("group-filter-having", 30_000, 0.0020, 0.0),
    ],
    # Q12: shipping modes; orders build probed by lineitem.
    "Q12": [
        ("build-orders", ORDERS, 0.0180, 0.0008),
        ("probe-lineitem-aggregate", LINEITEM, 0.0300, 0.0004),
    ],
    # Q13: customer distribution — the left-outer join of Figure 5 with
    # an expensive per-tuple aggregation pipeline (high per-tuple cost).
    "Q13": [
        ("build-customer", CUSTOMER, 0.0100, 0.0006),
        ("probe-orders-outer", ORDERS, 0.0920, 0.0010),
        ("aggregate-count-distribution", CUSTOMER, 0.0240, 0.0006),
        ("sort-distribution", 40, 0.0040, 0.0),
    ],
    # Q14: promotion effect; part build probed by lineitem.
    "Q14": [
        ("build-part", PART, 0.0060, 0.0004),
        ("probe-lineitem", LINEITEM, 0.0280, 0.0003),
    ],
    # Q15: top supplier via a revenue view computed twice.
    "Q15": [
        ("scan-lineitem-revenue", LINEITEM, 0.0300, 0.0006),
        ("build-revenue-view", 100_000, 0.0040, 0.0003),
        ("probe-supplier", SUPPLIER, 0.0010, 0.0),
        ("scan-max-revenue", 100_000, 0.0050, 0.0),
    ],
    # Q16: parts/supplier relationship; distinct aggregation.
    "Q16": [
        ("build-part-filtered", PART, 0.0070, 0.0004),
        ("scan-partsupp-probe", PARTSUPP, 0.0200, 0.0006),
        ("group-distinct-suppliers", 120_000, 0.0060, 0.0),
    ],
    # Q17: small-quantity-order revenue; lineitem scanned twice.
    "Q17": [
        ("build-part-container", PART, 0.0050, 0.0003),
        ("scan-lineitem-group-avg", LINEITEM, 0.0400, 0.0010),
        ("probe-lineitem-filter", LINEITEM, 0.0130, 0.0002),
    ],
    # Q18: large-volume customers; the heaviest group-by on lineitem.
    "Q18": [
        ("group-lineitem-quantities", LINEITEM, 0.0820, 0.0015),
        ("build-orders-probe", ORDERS, 0.0280, 0.0008),
        ("probe-lineitem-join", LINEITEM, 0.0340, 0.0006),
        ("topk-output", 100, 0.0040, 0.0),
    ],
    # Q19: discounted revenue; disjunctive predicates (costly per tuple).
    "Q19": [
        ("build-part-brands", PART, 0.0060, 0.0004),
        ("probe-lineitem-disjunction", LINEITEM, 0.0460, 0.0004),
    ],
    # Q20: potential part promotion.
    "Q20": [
        ("build-part-like", PART, 0.0050, 0.0003),
        ("scan-partsupp-group", PARTSUPP, 0.0140, 0.0005),
        ("scan-lineitem-aggregate", LINEITEM, 0.0240, 0.0006),
        ("probe-supplier", SUPPLIER, 0.0010, 0.0),
    ],
    # Q21: suppliers who kept orders waiting — the multi-pass lineitem
    # query of Figure 5 with one cheap-per-tuple scan and an expensive
    # probe pipeline (>30x per-tuple cost spread vs. the scan).
    "Q21": [
        ("build-supplier-nation", SUPPLIER + NATION, 0.0010, 0.0001),
        ("build-orders-status", ORDERS, 0.0190, 0.0008),
        ("scan-lineitem-exists", LINEITEM, 0.0300, 0.0008),
        ("probe-lineitem-main", LINEITEM, 0.0750, 0.0012),
        ("anti-probe-lineitem", LINEITEM, 0.0290, 0.0004),
        ("sort-output", 100, 0.0010, 0.0),
    ],
    # Q22: global sales opportunity; customer anti-join against orders.
    "Q22": [
        ("scan-customer-average", CUSTOMER, 0.0060, 0.0002),
        ("probe-customer-filter", CUSTOMER, 0.0070, 0.0002),
        ("anti-join-orders", ORDERS, 0.0080, 0.0002),
    ],
}

#: All query names in canonical order ("Q1" ... "Q22").
TPCH_QUERY_NAMES: Tuple[str, ...] = tuple(f"Q{i}" for i in range(1, 23))

#: The query shapes with real engine plans (see
#: :data:`repro.engine.queries.ENGINE_QUERIES`, minus the streaming
#: scan) — the default mix for scenarios that must run identically in
#: model and engine mode, e.g. the high-overlap work-sharing scenarios.
DEFAULT_MIX_NAMES: Tuple[str, ...] = (
    "Q1", "Q3", "Q4", "Q6", "Q12", "Q13", "Q14", "Q18", "Q19", "Q22",
)


def tpch_query(
    name: str,
    scale_factor: float = 1.0,
    compile_seconds: float = 0.0,
) -> QuerySpec:
    """Build the :class:`QuerySpec` for one TPC-H query shape.

    ``compile_seconds`` models Umbra's non-parallel code generation and
    is prepended as a single-tuple, non-adaptive pipeline when positive —
    the scheduler then treats compilation as ordinary (unsplittable) work.
    """
    definitions = _QUERY_PIPELINES.get(name)
    if definitions is None:
        raise WorkloadError(
            f"unknown TPC-H query {name!r}; expected one of {TPCH_QUERY_NAMES}"
        )
    pipelines: List[PipelineSpec] = []
    if compile_seconds > 0.0:
        pipelines.append(
            PipelineSpec(
                name="compile",
                tuples=1,
                tuples_per_second=1.0 / compile_seconds,
                parallel_efficiency=0.0,
                supports_adaptive=False,
                fixed_morsel_tuples=1,
            )
        )
    for pipeline_name, rows_sf1, seconds_sf1, finalize_sf1 in definitions:
        rows = max(1, int(round(rows_sf1 * scale_factor)))
        rate = rows_sf1 / seconds_sf1
        pipelines.append(
            PipelineSpec(
                name=pipeline_name,
                tuples=rows,
                tuples_per_second=rate,
                finalize_seconds=finalize_sf1 * scale_factor,
            )
        )
    # The compile cost is carried by its pipeline (so the scheduler sees
    # it as work); QuerySpec.compile_seconds stays zero to avoid double
    # counting in the analytic latency helpers.
    return QuerySpec(
        name=name,
        scale_factor=scale_factor,
        pipelines=tuple(pipelines),
    )


def tpch_suite(
    scale_factor: float = 1.0,
    compile_seconds: float = 0.0,
    names: Sequence[str] = TPCH_QUERY_NAMES,
) -> List[QuerySpec]:
    """All (or selected) TPC-H query specs at one scale factor."""
    return [tpch_query(name, scale_factor, compile_seconds) for name in names]
