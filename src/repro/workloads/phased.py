"""Composable workload builders: phases, bursts and tenants.

The basic generator draws one stationary Poisson workload.  Real
analytical workloads — and the scenarios that motivate self-tuning (§4)
— are non-stationary: the mix shifts over time, bursts arrive on top of
a base load, and multiple tenants with different priorities share the
system.  This module provides small composable builders for those
shapes; they all produce the plain ``[(arrival_time, QuerySpec)]``
workload the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.specs import QuerySpec
from repro.errors import WorkloadError
from repro.simcore.rng import RngFactory
from repro.workloads.generator import Workload, generate_workload
from repro.workloads.mixes import QueryMix


@dataclass(frozen=True)
class WorkloadPhase:
    """One stationary stretch of a phased workload."""

    mix: QueryMix
    duration: float
    #: Arrival rate; ``None`` derives it from ``load`` and the workers.
    rate: Optional[float] = None
    load: Optional[float] = None

    def resolved_rate(self, n_workers: int) -> float:
        """The phase's arrival rate (resolving a load target if given)."""
        if self.rate is not None:
            return self.rate
        if self.load is None:
            raise WorkloadError("phase needs either a rate or a load target")
        mean_work = self.mix.expected_work_seconds()
        return self.load * n_workers / mean_work


def phased_workload(
    phases: Sequence[WorkloadPhase],
    n_workers: int,
    rng_factory: RngFactory,
) -> Workload:
    """Concatenate stationary phases into one workload.

    Each phase gets an independent RNG stream, so editing one phase
    never reshuffles the others.
    """
    if not phases:
        raise WorkloadError("need at least one phase")
    workload: Workload = []
    offset = 0.0
    for index, phase in enumerate(phases):
        if phase.duration <= 0.0:
            raise WorkloadError(f"phase {index} has non-positive duration")
        rng = rng_factory.stream(f"phase-{index}")
        rate = phase.resolved_rate(n_workers)
        for arrival, query in generate_workload(phase.mix, rate, phase.duration, rng):
            workload.append((offset + arrival, query))
        offset += phase.duration
    return workload


def burst_workload(
    base: Workload,
    burst_mix: QueryMix,
    burst_at: float,
    burst_size: int,
    rng_factory: RngFactory,
    spread: float = 0.0,
) -> Workload:
    """Overlay a burst of ``burst_size`` queries onto a base workload.

    ``spread`` > 0 smears the burst uniformly over that many seconds;
    0 means all queries arrive at the same instant — the admission-queue
    stress case of §2.3.
    """
    if burst_size < 0:
        raise WorkloadError("burst size must be non-negative")
    rng = rng_factory.stream("burst")
    queries = burst_mix.sample(burst_size, rng)
    if spread > 0.0:
        offsets = np.sort(rng.uniform(0.0, spread, size=burst_size))
    else:
        offsets = np.zeros(burst_size)
    merged = list(base)
    merged.extend(
        (burst_at + float(offset), query) for offset, query in zip(offsets, queries)
    )
    merged.sort(key=lambda item: item[0])
    return merged


@dataclass(frozen=True)
class Tenant:
    """One tenant: a mix, an arrival rate, and a user priority (§3.2).

    ``sla`` optionally names the tenant's admission class (see
    :mod:`repro.runtime.admission`): the cluster router reads it off
    the generated queries' ``sla:<name>`` tag to route and shed by
    class, so the §3.2 fairness experiments run unchanged against a
    sharded cluster.
    """

    name: str
    mix: QueryMix
    rate: float
    user_priority: float = 1.0
    sla: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise WorkloadError(f"tenant {self.name!r}: rate must be positive")
        if self.user_priority <= 0.0:
            raise WorkloadError(f"tenant {self.name!r}: priority must be positive")


def multi_tenant_workload(
    tenants: Sequence[Tenant],
    duration: float,
    rng_factory: RngFactory,
) -> Workload:
    """Interleave independent tenant streams into one workload.

    Every query is tagged with its tenant (``tags=("tenant:<name>",)``)
    and carries the tenant's user priority, which the stride scheduler's
    decay machinery applies as the §3.2 scaling of p0 and p_min.
    """
    if not tenants:
        raise WorkloadError("need at least one tenant")
    workload: Workload = []
    for tenant in tenants:
        rng = rng_factory.stream(f"tenant-{tenant.name}")
        tags = (f"tenant:{tenant.name}",)
        if tenant.sla is not None:
            tags = tags + (f"sla:{tenant.sla}",)
        for arrival, query in generate_workload(
            tenant.mix, tenant.rate, duration, rng
        ):
            tagged = replace(
                query,
                user_priority=tenant.user_priority,
                tags=tuple(query.tags) + tags,
            )
            workload.append((arrival, tagged))
    workload.sort(key=lambda item: item[0])
    return workload


def tenant_of(query: QuerySpec) -> Optional[str]:
    """Extract the tenant name from a tagged query (or ``None``)."""
    for tag in query.tags:
        if tag.startswith("tenant:"):
            return tag.split(":", 1)[1]
    return None


def sla_of(query: QuerySpec) -> Optional[str]:
    """Extract the SLA class name from a tagged query (or ``None``)."""
    for tag in query.tags:
        if tag.startswith("sla:"):
            return tag.split(":", 1)[1]
    return None
