"""Materialising workload instances for the simulator."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.specs import QuerySpec
from repro.workloads.arrivals import exponential_arrivals
from repro.workloads.mixes import QueryMix

Workload = List[Tuple[float, QuerySpec]]


def generate_workload(
    mix: QueryMix,
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> Workload:
    """Sample a Poisson workload: ``(arrival_time, query)`` pairs.

    Arrival times and query identities are drawn from independent parts
    of the generator stream, so the same seed always produces the same
    workload regardless of downstream consumption.
    """
    times = exponential_arrivals(rate, duration, rng)
    queries = mix.sample(len(times), rng)
    return list(zip(times, queries))


def workload_cpu_seconds(workload: Workload) -> float:
    """Total single-threaded CPU work of a workload instance."""
    return sum(query.total_work_seconds for _, query in workload)


def offered_load(workload: Workload, duration: float, n_workers: int) -> float:
    """Fraction of the machine's capacity the workload demands."""
    if duration <= 0.0 or n_workers <= 0:
        return 0.0
    return workload_cpu_seconds(workload) / (duration * n_workers)
