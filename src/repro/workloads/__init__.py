"""Workload generation: TPC-H-shaped queries, mixes and arrival processes.

The evaluation (§5.1) samples TPC-H queries at scale factors 3 and 30,
with SF3 three times as likely, and spaces arrivals by an exponential
distribution to create bursty load.  This package reproduces that setup:

* :mod:`~repro.workloads.profiles` — per-query pipeline cost profiles
  for all 22 TPC-H query shapes, scalable to any scale factor;
* :mod:`~repro.workloads.mixes` — the SF3/SF30 mixture (and custom ones);
* :mod:`~repro.workloads.arrivals` — Poisson arrival sampling;
* :mod:`~repro.workloads.load` — translating a target load factor alpha
  into an arrival rate, and locating the oversubscription point;
* :mod:`~repro.workloads.generator` — materialising workload instances.
"""

from repro.workloads.arrivals import exponential_arrivals
from repro.workloads.generator import generate_workload, workload_cpu_seconds
from repro.workloads.load import (
    arrival_rate_for_load,
    find_oversubscription_rate,
    mean_isolated_latency,
)
from repro.workloads.mixes import QueryMix, engine_mix, tpch_mix
from repro.workloads.phased import (
    Tenant,
    WorkloadPhase,
    burst_workload,
    multi_tenant_workload,
    phased_workload,
    sla_of,
    tenant_of,
)
from repro.workloads.profiles import (
    DEFAULT_MIX_NAMES,
    TPCH_QUERY_NAMES,
    tpch_query,
    tpch_suite,
)

__all__ = [
    "DEFAULT_MIX_NAMES",
    "QueryMix",
    "TPCH_QUERY_NAMES",
    "Tenant",
    "WorkloadPhase",
    "burst_workload",
    "multi_tenant_workload",
    "phased_workload",
    "sla_of",
    "tenant_of",
    "arrival_rate_for_load",
    "exponential_arrivals",
    "find_oversubscription_rate",
    "engine_mix",
    "generate_workload",
    "mean_isolated_latency",
    "tpch_mix",
    "tpch_query",
    "tpch_suite",
    "workload_cpu_seconds",
]
