"""Arrival processes (§5.1).

"We calculate the spacing of queries by sampling from an exponential
distribution with expected value 1/lambda" — a Poisson arrival process.
The bursts this produces (several queries in short succession) are what
make the workload challenging even below full load.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError


def exponential_arrivals(
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> List[float]:
    """Arrival times of a Poisson process with ``rate`` over ``duration``.

    Returns strictly increasing timestamps within ``[0, duration)``.
    """
    if rate <= 0.0:
        raise WorkloadError("arrival rate must be positive")
    if duration <= 0.0:
        raise WorkloadError("duration must be positive")
    # Draw in blocks: the expected count is rate * duration; drawing 20%
    # headroom avoids the per-sample Python loop in the common case.
    arrivals: List[float] = []
    now = 0.0
    block = max(16, int(rate * duration * 1.2))
    while now < duration:
        gaps = rng.exponential(1.0 / rate, size=block)
        for gap in gaps:
            now += float(gap)
            if now >= duration:
                break
            arrivals.append(now)
    return arrivals


def fixed_count_arrivals(
    rate: float,
    count: int,
    rng: np.random.Generator,
) -> List[float]:
    """Exactly ``count`` Poisson arrivals (used by the overhead study)."""
    if rate <= 0.0:
        raise WorkloadError("arrival rate must be positive")
    if count < 0:
        raise WorkloadError("count must be non-negative")
    gaps = rng.exponential(1.0 / rate, size=count)
    return list(np.cumsum(gaps))
