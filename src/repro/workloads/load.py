"""Load calibration (§5.1 / §5.4).

Two different load definitions appear in the paper:

* **Within-Umbra experiments (§5.2)**: with mean isolated query duration
  ``d``, load alpha corresponds to an arrival rate ``lambda = alpha / d``
  — at alpha = 1 the system receives exactly as much work per second as
  it can execute when queries run back to back.
* **Cross-system experiments (§5.4)**: systems saturate very differently,
  so load is anchored at the *oversubscription point*: the arrival rate
  at which the mean slowdown of the workload exceeds 50 defines
  alpha = 1.0, and other loads scale that rate.

Both calibrations are provided here.  Isolated latencies are measured by
running each distinct query alone through the caller-supplied runner
(usually a one-query simulation), which is more faithful than the
analytic estimate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import CalibrationError
from repro.metrics.latency import query_key
from repro.workloads.mixes import QueryMix


def mean_isolated_latency(
    mix: QueryMix,
    base_latencies: Dict[str, float],
) -> float:
    """Probability-weighted mean isolated latency of the mix.

    ``base_latencies`` maps :func:`~repro.metrics.latency.query_key` keys
    to measured isolated latencies.
    """
    probabilities = mix.weights
    total = 0.0
    for (query, _), p in zip(mix.entries, probabilities):
        key = query_key(query.name, query.scale_factor)
        if key not in base_latencies:
            raise CalibrationError(f"missing isolated latency for {key}")
        total += float(p) * base_latencies[key]
    return total


def arrival_rate_for_load(
    mix: QueryMix,
    load: float,
    base_latencies: Optional[Dict[str, float]] = None,
    n_workers: Optional[int] = None,
    basis: str = "capacity",
) -> float:
    """Translate a target load factor into an arrival rate.

    Two bases are supported:

    * ``"capacity"`` (default): ``lambda = alpha * W / E[work]`` — the
      rate at which the offered CPU work equals fraction ``alpha`` of
      the machine's capacity.  This is the regime the paper's
      experiments operate in (on their hardware, pipelines scale almost
      linearly, so their formula below lands at the same point; in the
      simulator, contention and task floors dilute isolated speedup, so
      anchoring at utilisation is the faithful translation).
    * ``"isolated"``: the paper's literal §5.1 formula
      ``lambda = alpha / d`` with ``d`` the mean isolated (all-cores)
      query duration, requiring measured ``base_latencies``.
    """
    if load <= 0.0:
        raise CalibrationError("load must be positive")
    if basis == "capacity":
        if n_workers is None or n_workers <= 0:
            raise CalibrationError("capacity basis requires n_workers")
        mean_work = mix.expected_work_seconds()
        if mean_work <= 0.0:
            raise CalibrationError("mix has no work")
        return load * n_workers / mean_work
    if basis == "isolated":
        if base_latencies is None:
            raise CalibrationError("isolated basis requires base latencies")
        mean_duration = mean_isolated_latency(mix, base_latencies)
        if mean_duration <= 0.0:
            raise CalibrationError("mean isolated duration must be positive")
        return load / mean_duration
    raise CalibrationError(f"unknown load basis {basis!r}")


def find_oversubscription_rate(
    mean_slowdown_at_rate: Callable[[float], float],
    initial_rate: float,
    threshold: float = 50.0,
    max_iterations: int = 16,
    tolerance: float = 0.05,
) -> float:
    """§5.4 calibration: the rate at which mean slowdown crosses 50.

    ``mean_slowdown_at_rate`` runs a (short) experiment at the given
    arrival rate and returns the workload's mean slowdown.  A bracketing
    phase doubles/halves the rate until the threshold is enclosed, then
    bisection narrows it to the requested relative tolerance.
    """
    if initial_rate <= 0.0:
        raise CalibrationError("initial rate must be positive")
    low = high = initial_rate
    value = mean_slowdown_at_rate(initial_rate)
    iterations = 0
    if value < threshold:
        while value < threshold:
            iterations += 1
            if iterations > max_iterations:
                raise CalibrationError("could not bracket the oversubscription point")
            low = high
            high *= 2.0
            value = mean_slowdown_at_rate(high)
    else:
        while value >= threshold:
            iterations += 1
            if iterations > max_iterations:
                raise CalibrationError("could not bracket the oversubscription point")
            high = low
            low /= 2.0
            value = mean_slowdown_at_rate(low)
    # Bisection on [low, high].
    while (high - low) / high > tolerance and iterations < max_iterations * 2:
        iterations += 1
        mid = 0.5 * (low + high)
        if mean_slowdown_at_rate(mid) >= threshold:
            high = mid
        else:
            low = mid
    return high
