"""Workload (de)serialization.

Experiments become auditable when their exact workload instance can be
saved next to the results.  These helpers serialize query specs and
whole workloads (arrival time + query) to plain JSON and back,
round-tripping every field including custom priorities and tags.

For *process handoff* (the warm sweep pool and the process execution
backend) there is also a flat-array form: a workload of thousands of
arrivals referencing a handful of distinct query specs becomes one
``float64`` arrival array, one ``int32`` spec-index array and a small
deduplicated spec table — instead of one pickled ``(float, QuerySpec)``
tuple per arrival.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.core.specs import PipelineSpec, QuerySpec
from repro.errors import WorkloadError

PathLike = Union[str, Path]
Workload = List[Tuple[float, QuerySpec]]

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def pipeline_to_dict(pipeline: PipelineSpec) -> dict:
    """One pipeline spec as a JSON-safe dict."""
    return {
        "name": pipeline.name,
        "tuples": pipeline.tuples,
        "tuples_per_second": pipeline.tuples_per_second,
        "parallel_efficiency": pipeline.parallel_efficiency,
        "supports_adaptive": pipeline.supports_adaptive,
        "fixed_morsel_tuples": pipeline.fixed_morsel_tuples,
        "finalize_seconds": pipeline.finalize_seconds,
    }


def pipeline_from_dict(data: dict) -> PipelineSpec:
    """Inverse of :func:`pipeline_to_dict`."""
    return PipelineSpec(**data)


def query_to_dict(query: QuerySpec) -> dict:
    """One query spec as a JSON-safe dict."""
    return {
        "name": query.name,
        "scale_factor": query.scale_factor,
        "pipelines": [pipeline_to_dict(p) for p in query.pipelines],
        "compile_seconds": query.compile_seconds,
        "user_priority": query.user_priority,
        "static_priority": query.static_priority,
        "tags": list(query.tags),
        "deadline": query.deadline,
    }


def query_from_dict(data: dict) -> QuerySpec:
    """Inverse of :func:`query_to_dict`."""
    return QuerySpec(
        name=data["name"],
        scale_factor=data["scale_factor"],
        pipelines=tuple(pipeline_from_dict(p) for p in data["pipelines"]),
        compile_seconds=data.get("compile_seconds", 0.0),
        user_priority=data.get("user_priority"),
        static_priority=data.get("static_priority"),
        tags=tuple(data.get("tags", ())),
        deadline=data.get("deadline"),
    )


def save_workload(workload: Workload, path: PathLike) -> Path:
    """Write a workload instance to JSON.

    Identical query specs are deduplicated: the file stores a spec table
    plus (arrival, spec index) pairs, which keeps TPC-H workloads with
    thousands of arrivals compact.
    """
    path = Path(path)
    spec_table: List[dict] = []
    spec_index: dict = {}
    arrivals: List[Tuple[float, int]] = []
    for arrival, query in workload:
        key = id(query)
        index = spec_index.get(key)
        if index is None:
            index = len(spec_table)
            spec_index[key] = index
            spec_table.append(query_to_dict(query))
        arrivals.append((arrival, index))
    payload = {
        "format_version": FORMAT_VERSION,
        "queries": spec_table,
        "arrivals": arrivals,
    }
    with path.open("w") as handle:
        json.dump(payload, handle)
    return path


def workload_to_arrays(workload: Workload) -> dict:
    """Encode a workload as flat arrays plus a deduplicated spec table.

    Query specs are deduplicated *by value* (they are hashable frozen
    dataclasses), so a TPC-H workload with thousands of arrivals ships a
    spec table of a few entries plus two compact arrays.  Arrival times
    cross as ``float64`` — the exact Python float — so the round trip is
    bit-lossless.
    """
    import numpy as np

    specs: List[QuerySpec] = []
    spec_index: dict = {}
    arrivals = np.empty(len(workload), dtype=np.float64)
    indices = np.empty(len(workload), dtype=np.int32)
    for i, (arrival, query) in enumerate(workload):
        index = spec_index.get(query)
        if index is None:
            index = len(specs)
            spec_index[query] = index
            specs.append(query)
        arrivals[i] = arrival
        indices[i] = index
    return {"specs": specs, "arrivals": arrivals, "indices": indices}


def workload_from_arrays(payload: dict) -> Workload:
    """Inverse of :func:`workload_to_arrays` (lossless)."""
    specs = payload["specs"]
    arrivals = payload["arrivals"]
    indices = payload["indices"]
    try:
        return [
            (float(arrivals[i]), specs[indices[i]])
            for i in range(len(arrivals))
        ]
    except IndexError:
        raise WorkloadError("corrupt workload payload: bad spec index") from None


def load_workload(path: PathLike) -> Workload:
    """Read a workload instance written by :func:`save_workload`."""
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format version {version!r} in {path}"
        )
    specs = [query_from_dict(entry) for entry in payload["queries"]]
    try:
        return [(float(t), specs[i]) for t, i in payload["arrivals"]]
    except IndexError:
        raise WorkloadError(f"corrupt workload file {path}: bad spec index") from None
