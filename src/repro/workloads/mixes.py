"""Query mixes: which query runs at which scale factor, how often.

The evaluation's mix (§5.1): sample uniformly from the TPC-H queries,
then pick SF3 with probability 3/4 and SF30 with probability 1/4.  While
3 out of 4 queries are short running, they account for only about 1/4 of
the total execution time — the imbalance that makes transparent
prioritization of short queries nearly free (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.specs import QuerySpec
from repro.errors import WorkloadError
from repro.workloads.profiles import (
    DEFAULT_MIX_NAMES,
    TPCH_QUERY_NAMES,
    tpch_query,
)


@dataclass(frozen=True)
class QueryMix:
    """A weighted set of query specs to sample from."""

    entries: Tuple[Tuple[QuerySpec, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError("a query mix needs at least one entry")
        if any(weight <= 0.0 for _, weight in self.entries):
            raise WorkloadError("mix weights must be positive")

    @property
    def queries(self) -> List[QuerySpec]:
        """The distinct query specs of the mix."""
        return [query for query, _ in self.entries]

    @property
    def weights(self) -> np.ndarray:
        """Normalised sampling probabilities."""
        raw = np.array([weight for _, weight in self.entries], dtype=float)
        return raw / raw.sum()

    def sample(self, count: int, rng: np.random.Generator) -> List[QuerySpec]:
        """Draw ``count`` queries i.i.d. according to the weights."""
        if count < 0:
            raise WorkloadError("sample count must be non-negative")
        indices = rng.choice(len(self.entries), size=count, p=self.weights)
        return [self.entries[int(i)][0] for i in indices]

    def expected_work_seconds(self) -> float:
        """Expected single-threaded CPU work per sampled query."""
        probabilities = self.weights
        return float(
            sum(
                p * query.total_work_seconds
                for (query, _), p in zip(self.entries, probabilities)
            )
        )

    def by_scale_factor(self) -> Dict[float, float]:
        """Total sampling probability per scale factor."""
        result: Dict[float, float] = {}
        for (query, _), p in zip(self.entries, self.weights):
            result[query.scale_factor] = result.get(query.scale_factor, 0.0) + float(p)
        return result


def tpch_mix(
    sf_small: float = 3.0,
    sf_large: float = 30.0,
    p_small: float = 0.75,
    names: Sequence[str] = TPCH_QUERY_NAMES,
    compile_seconds: float = 0.0,
) -> QueryMix:
    """The paper's workload: TPC-H at two scale factors, 3:1 in favour of
    the small one.
    """
    if not 0.0 < p_small < 1.0:
        raise WorkloadError("p_small must be strictly between 0 and 1")
    entries: List[Tuple[QuerySpec, float]] = []
    for name in names:
        entries.append((tpch_query(name, sf_small, compile_seconds), p_small))
        entries.append((tpch_query(name, sf_large, compile_seconds), 1.0 - p_small))
    return QueryMix(entries=tuple(entries))


def engine_mix(
    sf_small: float = 3.0,
    sf_large: float = 30.0,
    p_small: float = 0.75,
    compile_seconds: float = 0.0,
) -> QueryMix:
    """The paper's mix restricted to the engine-runnable query shapes.

    Ten shapes (:data:`~repro.workloads.profiles.DEFAULT_MIX_NAMES`:
    Q1/Q3/Q4/Q6/Q12/Q13/Q14/Q18/Q19/Q22) instead of the historical
    four, so high-overlap scenarios — the ones work sharing targets —
    exercise every implemented plan while staying valid for engine-mode
    submission.  The reference bench scenario keeps its explicit
    four-name ``tpch_mix`` and is unaffected.
    """
    return tpch_mix(
        sf_small=sf_small,
        sf_large=sf_large,
        p_small=p_small,
        names=DEFAULT_MIX_NAMES,
        compile_seconds=compile_seconds,
    )
